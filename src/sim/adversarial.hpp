// The committed adversarial scenario suite (DESIGN.md §8): one named case
// per fault class (partition+heal, flapping links, regional outage,
// transport loss, duplication, tampering, replay, quote forgery, plus a
// kitchen-sink composition), each pairing a small event-driven Scenario
// with a FaultSchedule builder. Fault windows are sized as fractions of a
// fault-free probe run's total simulated time, so every window heals before
// the run ends and the post-heal convergence invariant is checkable.
//
// Lives outside sim/scenario.hpp on purpose: the harness layer must not
// depend on experiment assembly (scenario.hpp is included by the engine).
#pragma once

#include <array>
#include <cstddef>
#include <vector>

#include "sim/experiment.hpp"
#include "sim/scenario.hpp"

namespace rex::sim {

/// One committed adversarial case. `build` receives the probe run's total
/// simulated time in seconds and returns the fault schedule to inject.
struct AdversarialCase {
  const char* name;
  Scenario (*make_scenario)();
  FaultSchedule (*build)(double t_end_s);
};

/// The suite, in a fixed order (tests and bench_adversarial iterate it).
[[nodiscard]] const std::vector<AdversarialCase>& adversarial_suite();

/// Everything one adversarial run yields: the probe (fault-free) result,
/// the harnessed result, and the harness accounting snapshot.
struct AdversarialOutcome {
  ExperimentResult probe;
  ExperimentResult result;
  std::array<FaultLedger, FaultTag::kCount> ledgers{};
  std::uint64_t invariant_checks = 0;
  std::uint64_t reattest_heals = 0;
};

/// Probe run (faults off) to size the windows, then the fault run with the
/// harness installed and finalized. Throws rex::Error on any invariant
/// violation. `epochs_override` > 0 shrinks the run (bench --smoke).
[[nodiscard]] AdversarialOutcome run_adversarial_case(
    const AdversarialCase& kase, std::size_t threads = 1,
    std::size_t epochs_override = 0);

}  // namespace rex::sim
