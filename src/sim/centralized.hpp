// Centralized baseline (the "Centralized (baseline)" curve in Figs 1/2/4).
//
// One model trained with full shuffled passes over the entire train set,
// evaluated on the entire test set; time per epoch from the same CostModel
// (no network, no enclave).
#pragma once

#include "data/dataset.hpp"
#include "ml/model.hpp"
#include "sim/cost_model.hpp"
#include "sim/metrics.hpp"

namespace rex::sim {

struct CentralizedSetup {
  std::vector<data::Rating> train;
  std::vector<data::Rating> test;
  ml::ModelFactory model_factory;
  std::uint64_t seed = 1;
  CostParams costs;
  std::string label = "centralized";
};

/// Trains for `epochs` full passes, recording RMSE and simulated time.
[[nodiscard]] ExperimentResult run_centralized(CentralizedSetup setup,
                                               std::size_t epochs);

}  // namespace rex::sim
