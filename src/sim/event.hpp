// Simulation events: the vocabulary of sim::SimEngine.
//
// Every state change in an event-driven run is one of these, ordered by a
// deterministic (simulated time, schedule sequence) key. The schedule
// sequence is assigned in a single-threaded scheduling phase that visits
// nodes in id order, so ties at the same simulated timestamp break the same
// way on every run regardless of worker-thread count (seeded tie-breaking,
// DESIGN.md §4 "Determinism").
#pragma once

#include <cstdint>

#include "net/message.hpp"
#include "support/calendar_queue.hpp"
#include "support/sim_clock.hpp"

namespace rex::sim {

enum class EventKind : std::uint8_t {
  kDeliver,     // one envelope reaches its destination host (per-edge latency)
  kTrain,       // a node's train timer fires (RMW period / barrier round)
  kShare,       // a node's queued shares hit the wire (schedules kDeliver)
  kTest,        // a node's epoch completes: metrics bookkeeping
  kAttestStep,  // one pre-protocol attestation delivery step
  kChurnUp,     // a churned node comes back online (starts the rejoin)
  /// Rejoin watchdog: if the node's re-attestation + resync exchange has not
  /// finished by this time (a contacted neighbor churned away mid-handshake),
  /// the rejoin is force-completed so the node's training resumes instead of
  /// waiting forever. Event::slot carries the rejoin generation, so a
  /// deadline left over from a previous outage is ignored.
  kRejoinDeadline,
  /// Periodic re-attestation sweep (DESIGN.md §8 "Re-attestation sweep"):
  /// scans online neighbor pairs for sessions a mid-run handshake left
  /// unattested (a failed verify, or one side churning away between
  /// challenge and quote) and restarts the handshake, so broken pairs heal
  /// before the next rejoin forces them. Scheduled on node 0 only; the
  /// sweep itself visits every pair.
  kReattestSweep,
  /// One open-loop inference query arrives at a node (DESIGN.md §9
  /// "Serving path"). The top-k scoring runs in the parallel math phase;
  /// the serial hook accounts latency/staleness and chains the node's next
  /// arrival. Event::slot addresses the QueryJob state. Only scheduled when
  /// the query load is enabled, so serving-off runs keep their schedule
  /// sequence numbers — and therefore their golden dumps — byte-identical.
  kQuery,
};

[[nodiscard]] inline const char* to_string(EventKind kind) {
  switch (kind) {
    case EventKind::kDeliver: return "deliver";
    case EventKind::kTrain: return "train";
    case EventKind::kShare: return "share";
    case EventKind::kTest: return "test";
    case EventKind::kAttestStep: return "attest";
    case EventKind::kChurnUp: return "churn-up";
    case EventKind::kRejoinDeadline: return "rejoin-deadline";
    case EventKind::kReattestSweep: return "reattest-sweep";
    case EventKind::kQuery: return "query";
  }
  return "?";
}

struct Event {
  SimTime time;
  std::uint64_t seq = 0;  // schedule order: the deterministic tie-break
  net::NodeId node = 0;
  EventKind kind = EventKind::kTrain;
  /// SlotPool id of the state this event carries (kDeliver: the in-flight
  /// envelope; kShare: the outbox batch; kTest: the pending epoch record).
  /// Replaces the seq-keyed unordered_maps: resolving event state is an
  /// indexed vector read instead of a hash lookup per event.
  std::uint32_t slot = 0;

  /// Earliest time first; FIFO schedule order on ties.
  [[nodiscard]] bool before(const Event& other) const {
    if (!(time == other.time)) return time < other.time;
    return seq < other.seq;
  }
};

/// Comparator turning std::priority_queue (a max-heap) into a min-heap on
/// (time, seq). The engine itself schedules through a CalendarQueue; this
/// comparator remains the reference ordering the equivalence fuzz test
/// checks the calendar queue against.
struct EventAfter {
  [[nodiscard]] bool operator()(const Event& a, const Event& b) const {
    return b.before(a);
  }
};

/// CalendarQueue key extractor: the same (time, seq) order EventAfter
/// defines.
struct EventCalendarKey {
  [[nodiscard]] CalendarKey operator()(const Event& event) const {
    return CalendarKey{event.time.seconds, event.seq};
  }
};

}  // namespace rex::sim
