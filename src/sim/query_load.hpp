// Open-loop inference traffic (DESIGN.md §9 "Serving path"): Poisson
// arrivals modulated by a diurnal sine, with Zipf hot-key skew across
// nodes. "Open loop" means arrivals are drawn from the load process alone —
// a slow or offline replica does not slow the generator down, it just eats
// queueing delay or drops, which is what makes tail latency measurable.
//
// Determinism: each node owns one derived RNG stream (master = scenario
// seed XOR a serving-only constant, then derive(node)), and all draws
// happen on the engine's single-threaded serial phase, so 1/2/8-thread
// runs are bit-identical and an enabled query load never perturbs the
// training/churn/WAN randomness streams.
#pragma once

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "support/rng.hpp"
#include "support/sim_clock.hpp"

namespace rex::sim {

/// Scenario knobs for the open-loop query generator. Disabled by default
/// (rate_hz == 0): no kQuery events are ever scheduled, keeping serving-off
/// runs byte-identical to the pre-serving golden dumps.
struct QueryLoadConfig {
  /// Mean aggregate arrival rate over the whole cluster, queries per
  /// simulated second. Split across nodes by the Zipf weights.
  double rate_hz = 0.0;
  /// Diurnal modulation m(t) = 1 + amplitude * sin(2*pi*t/period): 0 keeps
  /// the rate flat, 0.5 swings the instantaneous rate +/-50%.
  double diurnal_amplitude = 0.0;
  double diurnal_period_s = 1.0;
  /// Zipf skew across nodes: node ranked i gets weight (i+1)^-s. 0 means
  /// uniform; 0.9-1.2 models a hot-replica / hot-region serving mix.
  double zipf_s = 0.0;
  /// Recommendation list length per query.
  std::size_t top_k = 10;
  /// A served answer whose model is older than this (simulated seconds)
  /// counts as stale in `queries_stale`.
  double stale_threshold_s = 0.05;

  [[nodiscard]] bool enabled() const { return rate_hz > 0.0; }
};

/// Per-node arrival math for the open-loop generator. Stateless except for
/// the precomputed per-node rates; the engine owns the per-node RNG
/// streams and next-arrival clocks.
class QueryLoad {
 public:
  QueryLoad() = default;

  QueryLoad(const QueryLoadConfig& config, std::size_t nodes)
      : config_(config) {
    if (!config_.enabled() || nodes == 0) return;
    // Zipf weights w_i = (i+1)^-s over node ids, normalized so the
    // per-node rates sum to rate_hz. Node id doubles as popularity rank:
    // deterministic, and benches can sort per-node counters by id to see
    // the skew directly.
    rates_hz_.resize(nodes);
    double total = 0.0;
    for (std::size_t i = 0; i < nodes; ++i) {
      rates_hz_[i] = std::pow(static_cast<double>(i + 1), -config_.zipf_s);
      total += rates_hz_[i];
    }
    const double scale = config_.rate_hz / total;
    for (double& r : rates_hz_) r *= scale;
  }

  [[nodiscard]] bool enabled() const { return config_.enabled(); }
  [[nodiscard]] const QueryLoadConfig& config() const { return config_; }

  /// Mean arrival rate of `node` at simulated time `t` (diurnal applied).
  [[nodiscard]] double rate_at(std::size_t node, SimTime t) const {
    double rate = rates_hz_[node];
    if (config_.diurnal_amplitude != 0.0 && config_.diurnal_period_s > 0.0) {
      const double phase =
          2.0 * kPi * t.seconds / config_.diurnal_period_s;
      rate *= 1.0 + config_.diurnal_amplitude * std::sin(phase);
    }
    return rate > 0.0 ? rate : 0.0;
  }

  /// Draws the next arrival for `node` strictly after `now` from the
  /// node's own stream: exponential inter-arrival at the instantaneous
  /// (diurnally modulated) rate — a standard piecewise approximation of
  /// the inhomogeneous Poisson process that stays exact when amplitude
  /// is 0. A momentarily zero rate (amplitude >= 1 at the trough) skips
  /// ahead by a quarter period instead of dividing by zero.
  [[nodiscard]] SimTime next_arrival(std::size_t node, SimTime now,
                                     Rng& rng) const {
    const double rate = rate_at(node, now);
    if (rate <= 0.0) {
      return SimTime{now.seconds + 0.25 * config_.diurnal_period_s};
    }
    const double u = rng.uniform01();
    const double gap = -std::log1p(-u) / rate;
    return SimTime{now.seconds + gap};
  }

 private:
  static constexpr double kPi = 3.14159265358979323846;

  QueryLoadConfig config_;
  std::vector<double> rates_hz_;
};

}  // namespace rex::sim
