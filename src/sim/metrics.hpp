// Experiment metrics: the per-epoch aggregates the paper's figures chart.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "sim/cost_model.hpp"
#include "support/sim_clock.hpp"

namespace rex::sim {

/// One synchronized round (= epoch) of a decentralized run, aggregated over
/// nodes; or one epoch of the centralized baseline.
struct RoundRecord {
  std::uint64_t epoch = 0;
  SimTime round_time;        // max node total + propagation latency
  SimTime cumulative_time;   // running simulated clock
  /// Nodes aggregated into this record: all of them for barrier rounds;
  /// for event-driven runs, the nodes that completed this epoch index
  /// (heterogeneous speeds make these counts diverge — by design).
  std::size_t nodes_reporting = 0;
  /// Partition-aware metric (DESIGN.md §6): mean fraction of the network
  /// online while this record's contributors completed it. Exactly 1.0 for
  /// barrier rounds and churn-free event runs.
  double reachable_fraction = 1.0;

  double mean_rmse = 0.0;    // "nodes mean RMSE" (Fig 1/2/4/5 y-axis)
  double min_rmse = 0.0;
  double max_rmse = 0.0;

  /// Per-node data in+out this epoch, averaged over nodes (Fig 2/5b/6b).
  double mean_bytes_in_out = 0.0;

  StageTimes mean_stages;    // Fig 5a/6a/7a breakdowns
  StageTimes max_stages;

  double mean_memory_bytes = 0.0;  // Fig 6b/7b RAM panel
  double max_memory_bytes = 0.0;

  double mean_store_size = 0.0;    // raw-data items held per node
  std::uint64_t duplicates_dropped = 0;
  /// Wire bytes the payload codecs avoided this epoch, summed over the
  /// reporting nodes (0 when compression is off — see docs/reporting.md).
  std::uint64_t bytes_saved_compression = 0;
};

struct ExperimentResult {
  std::string label;
  std::vector<RoundRecord> rounds;

  [[nodiscard]] bool empty() const { return rounds.empty(); }

  [[nodiscard]] double final_rmse() const {
    return rounds.empty() ? 0.0 : rounds.back().mean_rmse;
  }

  [[nodiscard]] SimTime total_time() const {
    return rounds.empty() ? SimTime{0.0} : rounds.back().cumulative_time;
  }

  /// First simulated time at which mean RMSE <= target (Table II/III
  /// "time to reach a given target error"); nullopt if never reached.
  [[nodiscard]] std::optional<SimTime> time_to_reach(double target_rmse) const {
    for (const RoundRecord& r : rounds) {
      if (r.mean_rmse <= target_rmse) return r.cumulative_time;
    }
    return std::nullopt;
  }

  /// Mean per-node in+out bytes per epoch over the whole run.
  [[nodiscard]] double mean_epoch_traffic() const {
    if (rounds.empty()) return 0.0;
    double acc = 0.0;
    for (const RoundRecord& r : rounds) acc += r.mean_bytes_in_out;
    return acc / static_cast<double>(rounds.size());
  }

  /// Mean per-epoch stage times over the run (Fig 6a/7a bars).
  [[nodiscard]] StageTimes mean_stage_times() const {
    StageTimes acc;
    if (rounds.empty()) return acc;
    for (const RoundRecord& r : rounds) {
      acc.merge += r.mean_stages.merge;
      acc.train += r.mean_stages.train;
      acc.share += r.mean_stages.share;
      acc.test += r.mean_stages.test;
    }
    const double n = static_cast<double>(rounds.size());
    acc.merge = SimTime{acc.merge.seconds / n};
    acc.train = SimTime{acc.train.seconds / n};
    acc.share = SimTime{acc.share.seconds / n};
    acc.test = SimTime{acc.test.seconds / n};
    return acc;
  }

  /// Mean per-epoch wall time (Table IV overhead computation).
  [[nodiscard]] double mean_epoch_seconds() const {
    if (rounds.empty()) return 0.0;
    return total_time().seconds / static_cast<double>(rounds.size());
  }

  /// Peak node memory over the run.
  [[nodiscard]] double peak_memory_bytes() const {
    double peak = 0.0;
    for (const RoundRecord& r : rounds) {
      peak = std::max(peak, r.max_memory_bytes);
    }
    return peak;
  }
};

}  // namespace rex::sim
