#include "graph/topology.hpp"

#include "support/error.hpp"

namespace rex::graph {

Graph make_small_world(const SmallWorldParams& params, Rng& rng) {
  const std::size_t n = params.nodes;
  const std::size_t k = params.close_connections;
  REX_REQUIRE(n >= 2, "small world needs at least 2 nodes");
  REX_REQUIRE(k >= 2 && k % 2 == 0, "close_connections must be even and >= 2");
  REX_REQUIRE(k < n, "close_connections must be below node count");

  Graph g(n);
  // Ring lattice: node v connects to its k/2 clockwise neighbors (the
  // counter-clockwise ones come from symmetry).
  for (NodeId v = 0; v < n; ++v) {
    for (std::size_t hop = 1; hop <= k / 2; ++hop) {
      const NodeId w = static_cast<NodeId>((v + hop) % n);
      // Watts–Strogatz rewiring: replace the lattice edge with a random
      // far-fetched one with probability far_probability.
      if (rng.bernoulli(params.far_probability)) {
        // Retry until a valid non-duplicate target is found; with k << n a
        // couple of attempts suffice. Keep the lattice edge after 32 misses
        // (degenerate dense graphs) so generation always terminates.
        bool rewired = false;
        for (int attempt = 0; attempt < 32 && !rewired; ++attempt) {
          const NodeId target = static_cast<NodeId>(rng.uniform(n));
          if (target != v && !g.has_edge(v, target)) {
            g.add_edge(v, target);
            rewired = true;
          }
        }
        if (rewired) continue;
      }
      g.add_edge(v, w);
    }
  }
  // The ring lattice backbone keeps the graph connected for p << 1; guard
  // against the unlikely disconnection from rewiring anyway.
  if (!g.is_connected()) {
    const auto components = g.connected_components();
    for (std::size_t c = 1; c < components.size(); ++c) {
      g.add_edge(components[0][rng.uniform(components[0].size())],
                 components[c][rng.uniform(components[c].size())]);
    }
  }
  return g;
}

Graph make_erdos_renyi(const ErdosRenyiParams& params, Rng& rng) {
  const std::size_t n = params.nodes;
  REX_REQUIRE(n >= 2, "erdos-renyi needs at least 2 nodes");
  REX_REQUIRE(params.edge_probability >= 0.0 && params.edge_probability <= 1.0,
              "edge probability must be in [0,1]");
  Graph g(n);
  for (NodeId a = 0; a < n; ++a) {
    for (NodeId b = a + 1; b < n; ++b) {
      if (rng.bernoulli(params.edge_probability)) g.add_edge(a, b);
    }
  }
  if (params.ensure_connected && !g.is_connected()) {
    // Paper §IV-A2b: "we ensure to make it connected by adding the missing
    // edges". Bridge every component to the first with one random edge.
    const auto components = g.connected_components();
    for (std::size_t c = 1; c < components.size(); ++c) {
      g.add_edge(components[0][rng.uniform(components[0].size())],
                 components[c][rng.uniform(components[c].size())]);
    }
  }
  return g;
}

Graph make_fully_connected(std::size_t nodes) {
  Graph g(nodes);
  for (NodeId a = 0; a < nodes; ++a) {
    for (NodeId b = a + 1; b < nodes; ++b) g.add_edge(a, b);
  }
  return g;
}

Graph make_ring(std::size_t nodes) {
  REX_REQUIRE(nodes >= 3, "ring needs at least 3 nodes");
  Graph g(nodes);
  for (NodeId v = 0; v < nodes; ++v) {
    g.add_edge(v, static_cast<NodeId>((v + 1) % nodes));
  }
  return g;
}

}  // namespace rex::graph
