// Undirected simple graph over node ids [0, n).
//
// This is the communication topology of the decentralized system: neighbors
// are gossip targets, degrees feed the Metropolis–Hastings merge weights
// (paper §III-C2), and the metrics (diameter, clustering coefficient) are the
// quantities §IV-A2 uses to characterize Small World vs Erdős–Rényi.
#pragma once

#include <cstdint>
#include <vector>

namespace rex::graph {

using NodeId = std::uint32_t;

class Graph {
 public:
  Graph() = default;
  explicit Graph(std::size_t node_count) : adjacency_(node_count) {}

  [[nodiscard]] std::size_t node_count() const { return adjacency_.size(); }
  [[nodiscard]] std::size_t edge_count() const { return edge_count_; }

  /// Adds the undirected edge {a, b}. Self-loops and duplicates are ignored
  /// (returns false).
  bool add_edge(NodeId a, NodeId b);

  [[nodiscard]] bool has_edge(NodeId a, NodeId b) const;

  /// Sorted neighbor list of `v`.
  [[nodiscard]] const std::vector<NodeId>& neighbors(NodeId v) const;

  [[nodiscard]] std::size_t degree(NodeId v) const {
    return neighbors(v).size();
  }

  [[nodiscard]] double average_degree() const;

  /// True when every node can reach every other node.
  [[nodiscard]] bool is_connected() const;

  /// Connected components as lists of node ids (each sorted; components
  /// ordered by smallest member).
  [[nodiscard]] std::vector<std::vector<NodeId>> connected_components() const;

  /// Longest shortest path (hops). Returns 0 for n<=1; requires a connected
  /// graph (throws otherwise). O(n * (n + m)): fine for experiment-scale
  /// graphs (<= a few thousand nodes).
  [[nodiscard]] std::size_t diameter() const;

  /// Watts–Strogatz average local clustering coefficient.
  [[nodiscard]] double average_clustering_coefficient() const;

 private:
  /// BFS hop distances from `source` (SIZE_MAX for unreachable).
  [[nodiscard]] std::vector<std::size_t> bfs_distances(NodeId source) const;

  std::vector<std::vector<NodeId>> adjacency_;
  std::size_t edge_count_ = 0;
};

/// Metropolis–Hastings weight for the edge (i, j): 1 / (1 + max(deg_i, deg_j)).
/// Guarantees a doubly-stochastic mixing matrix when each node also applies
/// self-weight 1 - Σ_j w_ij (Xiao–Boyd–Kim, used by D-PSGD merging §III-C2).
[[nodiscard]] double metropolis_hastings_weight(std::size_t degree_i,
                                                std::size_t degree_j);

/// All MH weights of node `v` towards its neighbors, plus the self weight,
/// in neighbor order. front element = self weight.
[[nodiscard]] std::vector<double> metropolis_hastings_row(const Graph& g,
                                                          NodeId v);

}  // namespace rex::graph
