#include "graph/graph.hpp"

#include <algorithm>
#include <queue>

#include "support/error.hpp"

namespace rex::graph {

bool Graph::add_edge(NodeId a, NodeId b) {
  REX_REQUIRE(a < node_count() && b < node_count(), "edge endpoint out of range");
  if (a == b) return false;
  auto& na = adjacency_[a];
  const auto it = std::lower_bound(na.begin(), na.end(), b);
  if (it != na.end() && *it == b) return false;
  na.insert(it, b);
  auto& nb = adjacency_[b];
  nb.insert(std::lower_bound(nb.begin(), nb.end(), a), a);
  ++edge_count_;
  return true;
}

bool Graph::has_edge(NodeId a, NodeId b) const {
  REX_REQUIRE(a < node_count() && b < node_count(), "edge endpoint out of range");
  const auto& na = adjacency_[a];
  return std::binary_search(na.begin(), na.end(), b);
}

const std::vector<NodeId>& Graph::neighbors(NodeId v) const {
  REX_REQUIRE(v < node_count(), "node id out of range");
  return adjacency_[v];
}

double Graph::average_degree() const {
  if (node_count() == 0) return 0.0;
  return 2.0 * static_cast<double>(edge_count_) /
         static_cast<double>(node_count());
}

std::vector<std::size_t> Graph::bfs_distances(NodeId source) const {
  std::vector<std::size_t> dist(node_count(), SIZE_MAX);
  std::queue<NodeId> frontier;
  dist[source] = 0;
  frontier.push(source);
  while (!frontier.empty()) {
    const NodeId v = frontier.front();
    frontier.pop();
    for (NodeId w : adjacency_[v]) {
      if (dist[w] == SIZE_MAX) {
        dist[w] = dist[v] + 1;
        frontier.push(w);
      }
    }
  }
  return dist;
}

bool Graph::is_connected() const {
  if (node_count() <= 1) return true;
  const auto dist = bfs_distances(0);
  return std::none_of(dist.begin(), dist.end(),
                      [](std::size_t d) { return d == SIZE_MAX; });
}

std::vector<std::vector<NodeId>> Graph::connected_components() const {
  std::vector<std::vector<NodeId>> components;
  std::vector<bool> visited(node_count(), false);
  for (NodeId start = 0; start < node_count(); ++start) {
    if (visited[start]) continue;
    std::vector<NodeId> component;
    std::queue<NodeId> frontier;
    visited[start] = true;
    frontier.push(start);
    while (!frontier.empty()) {
      const NodeId v = frontier.front();
      frontier.pop();
      component.push_back(v);
      for (NodeId w : adjacency_[v]) {
        if (!visited[w]) {
          visited[w] = true;
          frontier.push(w);
        }
      }
    }
    std::sort(component.begin(), component.end());
    components.push_back(std::move(component));
  }
  return components;
}

std::size_t Graph::diameter() const {
  if (node_count() <= 1) return 0;
  REX_REQUIRE(is_connected(), "diameter requires a connected graph");
  std::size_t longest = 0;
  for (NodeId v = 0; v < node_count(); ++v) {
    const auto dist = bfs_distances(v);
    for (std::size_t d : dist) longest = std::max(longest, d);
  }
  return longest;
}

double Graph::average_clustering_coefficient() const {
  if (node_count() == 0) return 0.0;
  double total = 0.0;
  for (NodeId v = 0; v < node_count(); ++v) {
    const auto& nv = adjacency_[v];
    const std::size_t deg = nv.size();
    if (deg < 2) continue;  // coefficient 0 by convention
    std::size_t links = 0;
    for (std::size_t i = 0; i < deg; ++i) {
      for (std::size_t j = i + 1; j < deg; ++j) {
        if (has_edge(nv[i], nv[j])) ++links;
      }
    }
    total += 2.0 * static_cast<double>(links) /
             (static_cast<double>(deg) * static_cast<double>(deg - 1));
  }
  return total / static_cast<double>(node_count());
}

double metropolis_hastings_weight(std::size_t degree_i, std::size_t degree_j) {
  return 1.0 / (1.0 + static_cast<double>(std::max(degree_i, degree_j)));
}

std::vector<double> metropolis_hastings_row(const Graph& g, NodeId v) {
  const auto& nbrs = g.neighbors(v);
  std::vector<double> row;
  row.reserve(nbrs.size() + 1);
  double neighbor_total = 0.0;
  for (NodeId w : nbrs) {
    neighbor_total += metropolis_hastings_weight(g.degree(v), g.degree(w));
  }
  row.push_back(1.0 - neighbor_total);  // self weight first
  for (NodeId w : nbrs) {
    row.push_back(metropolis_hastings_weight(g.degree(v), g.degree(w)));
  }
  return row;
}

}  // namespace rex::graph
