// Topology generators (paper §IV-A2).
//
// Small World: Watts–Strogatz — ring lattice with `close_connections`
// neighbors per node, each edge rewired to a random far target with
// probability `far_probability` (the paper used boost's generator with 610/50
// nodes, 6 close connections, 3% far-fetched probability).
//
// Erdős–Rényi: G(n, p) with p = 5%, made connected by adding the missing
// edges between components, exactly as §IV-A2b describes.
#pragma once

#include "graph/graph.hpp"
#include "support/rng.hpp"

namespace rex::graph {

struct SmallWorldParams {
  std::size_t nodes = 50;
  std::size_t close_connections = 6;  // ring-lattice degree (even)
  double far_probability = 0.03;      // rewiring probability
};

struct ErdosRenyiParams {
  std::size_t nodes = 50;
  double edge_probability = 0.05;
  bool ensure_connected = true;
};

/// Generates a Watts–Strogatz small-world graph. Requires
/// close_connections even, >= 2, and < nodes.
[[nodiscard]] Graph make_small_world(const SmallWorldParams& params, Rng& rng);

/// Generates an Erdős–Rényi random graph; when ensure_connected, bridges
/// components with extra random edges afterwards.
[[nodiscard]] Graph make_erdos_renyi(const ErdosRenyiParams& params, Rng& rng);

/// Complete graph on n nodes (the paper's 8-node SGX testbed topology).
[[nodiscard]] Graph make_fully_connected(std::size_t nodes);

/// Ring over n nodes (useful in tests and ablations).
[[nodiscard]] Graph make_ring(std::size_t nodes);

}  // namespace rex::graph
