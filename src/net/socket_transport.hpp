// Socket transport backend: the same envelopes over real TCP links
// (DESIGN.md §11).
//
// The simulator moves envelopes through in-memory mailboxes; a deployment
// moves the *same* envelopes as length-prefixed frames (net/frame.hpp) over
// one TCP connection per neighbor edge. SocketTransport owns that boundary
// for one process: it wraps the node's ordinary net::Transport (which keeps
// doing what it does in-process — outbox queueing, payload pooling, traffic
// accounting) and pumps it over sockets:
//
//   outbound   pump_outbox() takes everything the host queued via
//              Transport::send, accounts it (record_send) and encodes it
//              into the destination peer's tx queue; bytes drain to the
//              socket as the kernel accepts them (EPOLLOUT on backpressure).
//
//   inbound    poll() reads ready sockets, reassembles frames across
//              arbitrary TCP segmentation, rebuilds each data frame into an
//              Envelope (payload copied into the transport's BufferPool),
//              accounts it (record_delivery) and hands it to the
//              deliver callback — the exact signature UntrustedHost::
//              on_deliver expects, so TrustedNode code is untouched.
//
// Connection policy: for every edge, the lower node id initiates and the
// higher id accepts — no simultaneous-connect races. Both sides send a
// HELLO (node id + cluster-config fingerprint) as the first frame; a peer
// counts as connected only once its HELLO validated. Initiators reconnect
// with exponential backoff after drops; queued tx frames survive a drop and
// are re-flushed on the next connection, rewound to the last whole-frame
// boundary so the new byte stream never starts mid-frame. Frames that fully
// entered the kernel before a drop may still be lost with the connection —
// exactly-once delivery across restarts is the job of the protocol-level
// rejoin/resync (DESIGN.md §6), not the framing layer.
//
// Single-threaded by design: everything happens inside poll() /
// pump_outbox() on the caller's thread, matching the one-process-per-node
// deployment model (node/daemon.hpp drives the loop).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <unordered_map>

#include "net/frame.hpp"
#include "net/netstats.hpp"
#include "net/transport.hpp"

namespace rex::net {

/// Where a peer listens. `host` is a numeric IP or resolvable name
/// ("127.0.0.1" for the loopback clusters in examples/clusters/).
struct SocketEndpoint {
  std::string host;
  std::uint16_t port = 0;
};

class SocketTransport {
 public:
  struct Options {
    NodeId self = 0;
    /// Port to listen on; 0 binds an ephemeral port (tests), read it back
    /// via listen_port().
    std::uint16_t listen_port = 0;
    std::string listen_host = "0.0.0.0";
    /// Cluster-config fingerprint carried in HELLO. Two processes launched
    /// from different configs refuse to talk instead of desynchronizing.
    std::uint64_t fingerprint = 0;
    /// Initiator reconnect backoff: first retry after `reconnect_initial_s`,
    /// doubling per failure up to `reconnect_max_s`.
    double reconnect_initial_s = 0.05;
    double reconnect_max_s = 2.0;
    /// PING cadence per connected peer feeding the RTT estimate; 0 disables.
    double ping_period_s = 0.5;
  };

  /// Inbound envelope sink (same shape as UntrustedHost::on_deliver).
  using DeliverFn = std::function<void(Envelope)>;

  /// `local` is the node's in-process transport: the host keeps sending
  /// through it, SocketTransport drains and accounts it. Throws on bind
  /// failure. Must outlive nothing — closes every socket on destruction.
  SocketTransport(Options options, Transport& local);
  ~SocketTransport();

  SocketTransport(const SocketTransport&) = delete;
  SocketTransport& operator=(const SocketTransport&) = delete;

  /// Port actually bound (== Options::listen_port unless that was 0).
  [[nodiscard]] std::uint16_t listen_port() const { return listen_port_; }

  /// Registers a neighbor edge. `initiator` says whether this side dials
  /// (deployment policy: lower id initiates — node/daemon.cpp applies it).
  /// The first dial happens inside the next poll().
  void add_peer(NodeId id, SocketEndpoint endpoint, bool initiator);

  /// Installs the inbound envelope sink. Must be set before poll().
  void set_deliver(DeliverFn deliver) { deliver_ = std::move(deliver); }

  /// Drains the local transport's outbox for `self`, accounts each envelope
  /// (Transport::record_send) and queues it on the destination peer's tx
  /// stream. Envelopes for a currently-down peer stay queued and flush on
  /// reconnect. Throws if an envelope targets an unregistered peer.
  void pump_outbox();

  /// Announces this node's epoch-target completion to every peer (the
  /// cluster shutdown barrier; see DoneFrame).
  void send_done(std::uint64_t epochs);

  /// One event-loop iteration: waits up to `timeout_ms` for socket
  /// readiness (shortened if a reconnect or ping timer is due sooner),
  /// services reads/writes/connects, fires due timers. Returns the number
  /// of envelopes delivered to the sink during this call.
  std::size_t poll(int timeout_ms);

  /// True once every registered peer's HELLO validated in both directions
  /// we can observe (we received theirs; ours is at least queued).
  [[nodiscard]] bool all_connected() const;

  /// True when every peer's tx stream (HELLO + queued frames) fully
  /// drained into the kernel — the daemon's safe-to-exit check.
  [[nodiscard]] bool tx_idle() const;

  /// Peers that announced DONE so far.
  [[nodiscard]] std::size_t peers_done() const;
  /// True iff `id` announced DONE.
  [[nodiscard]] bool peer_done(NodeId id) const;

  /// Per-peer byte/RTT/reconnect ledger (docs/reporting.md "Netstats").
  [[nodiscard]] const NetStats& netstats() const { return netstats_; }
  [[nodiscard]] NetStats& netstats() { return netstats_; }

 private:
  /// One neighbor edge and its (possibly down) connection.
  struct Peer {
    SocketEndpoint endpoint;
    bool initiator = false;

    int fd = -1;
    bool connecting = false;   // nonblocking connect() in flight
    bool identified = false;   // their HELLO validated on the current conn
    bool want_write = false;   // EPOLLOUT currently armed

    FrameParser parser;

    /// HELLO bytes for the current connection; flushed before txbuf so the
    /// handshake is always the stream's first frame even when data frames
    /// were queued while the link was down.
    Bytes hello;
    std::size_t hello_head = 0;

    /// Encoded frames awaiting the socket. `head` is the flush cursor,
    /// `mark` the start of the frame `head` sits in, `sizes` the byte
    /// length of each queued frame from `mark` on — on a drop, `head`
    /// rewinds to `mark` so the next connection resends the interrupted
    /// frame whole instead of starting mid-frame.
    Bytes txbuf;
    std::size_t head = 0;
    std::size_t mark = 0;
    std::deque<std::uint32_t> sizes;

    double next_attempt_s = 0.0;  // initiator redial time (monotonic)
    double backoff_s = 0.0;
    double next_ping_s = 0.0;

    bool done = false;
    std::uint64_t done_epochs = 0;
  };

  /// Accepted connection awaiting its identifying HELLO.
  struct Pending {
    FrameParser parser;
    std::uint64_t bytes_rx = 0;
  };

  [[nodiscard]] Peer& peer_ref(NodeId id);
  void setup_listener(const Options& options);
  void start_connect(NodeId id, double now_s);
  void on_connected(NodeId id, double now_s);
  void drop_connection(NodeId id, double now_s);
  void accept_ready();
  void close_pending(int fd);
  /// Binds an accepted, HELLO-identified fd to its peer slot.
  void adopt_pending(int fd, Pending&& pending, const HelloFrame& hello,
                     double now_s);
  void queue_frame(Peer& peer, std::size_t frame_start);
  void flush_peer(NodeId id, double now_s);
  void update_interest(NodeId id);
  std::size_t read_peer(NodeId id, double now_s);
  /// Processes every complete frame buffered for `id`; returns envelopes
  /// delivered. On the first protocol violation the connection drops.
  std::size_t drain_frames(NodeId id, double now_s);
  void handle_hello(Peer& peer, NodeId id, const HelloFrame& hello,
                    double now_s);
  void check_hello(const HelloFrame& hello) const;
  void service_timers(double now_s);

  Options options_;
  Transport& local_;
  DeliverFn deliver_;
  NetStats netstats_;

  int epoll_fd_ = -1;
  int listen_fd_ = -1;
  std::uint16_t listen_port_ = 0;

  std::map<NodeId, Peer> peers_;
  std::unordered_map<int, NodeId> fd_to_peer_;
  std::unordered_map<int, Pending> pending_;
};

}  // namespace rex::net
