#include "net/frame.hpp"


#include "support/error.hpp"

namespace rex::net {

namespace {

void put_u16(Bytes& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void put_u32(Bytes& out, std::uint32_t v) {
  for (int shift = 0; shift < 32; shift += 8) {
    out.push_back(static_cast<std::uint8_t>(v >> shift));
  }
}

void put_u64(Bytes& out, std::uint64_t v) {
  for (int shift = 0; shift < 64; shift += 8) {
    out.push_back(static_cast<std::uint8_t>(v >> shift));
  }
}

/// Little-endian reads off a cursor; false once the body runs short.
struct Reader {
  BytesView view;
  std::size_t pos = 0;

  bool u8(std::uint8_t& v) {
    if (pos + 1 > view.size()) return false;
    v = view[pos++];
    return true;
  }
  bool u16(std::uint16_t& v) {
    if (pos + 2 > view.size()) return false;
    v = static_cast<std::uint16_t>(view[pos] | (view[pos + 1] << 8));
    pos += 2;
    return true;
  }
  bool u32(std::uint32_t& v) {
    if (pos + 4 > view.size()) return false;
    v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(view[pos + i]) << (8 * i);
    }
    pos += 4;
    return true;
  }
  bool u64(std::uint64_t& v) {
    if (pos + 8 > view.size()) return false;
    v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(view[pos + i]) << (8 * i);
    }
    pos += 8;
    return true;
  }
};

}  // namespace

void append_frame(Bytes& out, FrameType type, BytesView body) {
  REX_REQUIRE(body.size() <= kMaxFrameBody, "frame body over the size cap");
  put_u32(out, static_cast<std::uint32_t>(1 + body.size()));
  out.push_back(static_cast<std::uint8_t>(type));
  out.insert(out.end(), body.begin(), body.end());
}

void append_hello(Bytes& out, NodeId node, std::uint64_t fingerprint) {
  Bytes body;
  body.reserve(18);
  put_u32(body, kHelloMagic);
  put_u16(body, kWireVersion);
  put_u32(body, node);
  put_u64(body, fingerprint);
  append_frame(out, FrameType::kHello, body);
}

void append_data(Bytes& out, const Envelope& envelope) {
  // Header layout == Envelope::kHeaderSize accounting: the u32 length
  // prefix plus src/dst/kind. Emitted inline (not via append_frame) to
  // avoid staging the payload through a temporary body vector.
  const std::size_t body = 2 * sizeof(NodeId) + 1 + envelope.payload.size();
  REX_REQUIRE(body + 1 <= kMaxFrameBody, "envelope payload over the size cap");
  put_u32(out, static_cast<std::uint32_t>(1 + body));
  out.push_back(static_cast<std::uint8_t>(FrameType::kData));
  put_u32(out, envelope.src);
  put_u32(out, envelope.dst);
  out.push_back(static_cast<std::uint8_t>(envelope.kind));
  const BytesView payload = envelope.payload;
  out.insert(out.end(), payload.begin(), payload.end());
}

void append_ping(Bytes& out, std::uint64_t token) {
  Bytes body;
  body.reserve(8);
  put_u64(body, token);
  append_frame(out, FrameType::kPing, body);
}

void append_pong(Bytes& out, std::uint64_t token) {
  Bytes body;
  body.reserve(8);
  put_u64(body, token);
  append_frame(out, FrameType::kPong, body);
}

void append_done(Bytes& out, NodeId node, std::uint64_t epochs) {
  Bytes body;
  body.reserve(12);
  put_u32(body, node);
  put_u64(body, epochs);
  append_frame(out, FrameType::kDone, body);
}

bool parse_data(BytesView body, DataFrame& out) {
  Reader r{body};
  std::uint8_t kind = 0;
  if (!r.u32(out.src) || !r.u32(out.dst) || !r.u8(kind)) return false;
  if (kind > static_cast<std::uint8_t>(MessageKind::kResync)) return false;
  out.kind = static_cast<MessageKind>(kind);
  out.payload = body.subspan(r.pos);
  return true;
}

bool parse_hello(BytesView body, HelloFrame& out) {
  Reader r{body};
  std::uint32_t magic = 0;
  if (!r.u32(magic) || magic != kHelloMagic) return false;
  if (!r.u16(out.version) || !r.u32(out.node) || !r.u64(out.fingerprint)) {
    return false;
  }
  return r.pos == body.size();
}

bool parse_ping_token(BytesView body, std::uint64_t& token) {
  Reader r{body};
  return r.u64(token) && r.pos == body.size();
}

bool parse_done(BytesView body, DoneFrame& out) {
  Reader r{body};
  return r.u32(out.node) && r.u64(out.epochs) && r.pos == body.size();
}

void FrameParser::feed(BytesView bytes) {
  // Compact before growing: once the unread suffix would sit on top of a
  // large consumed prefix, slide it down so the buffer does not creep.
  if (head_ > 0 && (head_ == buffer_.size() || head_ >= 4096)) {
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<std::ptrdiff_t>(head_));
    head_ = 0;
  }
  buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());
}

std::optional<Frame> FrameParser::next() {
  const std::size_t avail = buffer_.size() - head_;
  if (avail < 4) return std::nullopt;
  std::uint32_t length = 0;
  for (int i = 0; i < 4; ++i) {
    length |= static_cast<std::uint32_t>(buffer_[head_ + i]) << (8 * i);
  }
  REX_REQUIRE(length >= 1 && length <= kMaxFrameBody + 1,
              "malformed frame length prefix");
  if (avail < 4 + static_cast<std::size_t>(length)) return std::nullopt;
  const std::uint8_t type = buffer_[head_ + 4];
  REX_REQUIRE(type >= static_cast<std::uint8_t>(FrameType::kHello) &&
                  type <= static_cast<std::uint8_t>(FrameType::kDone),
              "unknown frame type");
  Frame frame;
  frame.type = static_cast<FrameType>(type);
  frame.body = BytesView(buffer_).subspan(head_ + 5, length - 1);
  head_ += 4 + length;
  return frame;
}

}  // namespace rex::net
