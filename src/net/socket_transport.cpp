#include "net/socket_transport.hpp"

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstring>
#include <ctime>
#include <limits>
#include <utility>

#include "support/error.hpp"

namespace rex::net {

namespace {

double mono_now() {
  timespec ts{};
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<double>(ts.tv_sec) +
         static_cast<double>(ts.tv_nsec) * 1e-9;
}

std::uint64_t mono_now_ns() {
  timespec ts{};
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<std::uint64_t>(ts.tv_sec) * 1000000000ull +
         static_cast<std::uint64_t>(ts.tv_nsec);
}

void set_nodelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
}

constexpr std::size_t kReadChunk = 64 * 1024;
constexpr std::size_t kTxCompactWatermark = 64 * 1024;
constexpr int kMaxEvents = 64;

}  // namespace

SocketTransport::SocketTransport(Options options, Transport& local)
    : options_(std::move(options)), local_(local) {
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  REX_REQUIRE(epoll_fd_ >= 0, "epoll_create1 failed");
  setup_listener(options_);
}

SocketTransport::~SocketTransport() {
  for (auto& [id, peer] : peers_) {
    if (peer.fd >= 0) ::close(peer.fd);
  }
  for (auto& [fd, pending] : pending_) ::close(fd);
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

void SocketTransport::setup_listener(const Options& options) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                        0);
  REX_REQUIRE(listen_fd_ >= 0, "listener socket() failed");
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options.listen_port);
  if (options.listen_host.empty() || options.listen_host == "0.0.0.0") {
    addr.sin_addr.s_addr = htonl(INADDR_ANY);
  } else {
    REX_REQUIRE(::inet_pton(AF_INET, options.listen_host.c_str(),
                            &addr.sin_addr) == 1,
                "listen_host is not a valid IPv4 address");
  }
  REX_REQUIRE(::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                     sizeof addr) == 0,
              "bind failed (port in use?)");
  REX_REQUIRE(::listen(listen_fd_, 64) == 0, "listen failed");

  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  REX_REQUIRE(::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                            &len) == 0,
              "getsockname failed");
  listen_port_ = ntohs(bound.sin_port);

  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = listen_fd_;
  REX_REQUIRE(::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev) == 0,
              "epoll_ctl(listener) failed");
}

void SocketTransport::add_peer(NodeId id, SocketEndpoint endpoint,
                               bool initiator) {
  REX_REQUIRE(id != options_.self, "node cannot peer with itself");
  REX_REQUIRE(peers_.find(id) == peers_.end(), "peer registered twice");
  Peer& peer = peers_[id];
  peer.endpoint = std::move(endpoint);
  peer.initiator = initiator;
  peer.next_attempt_s = 0.0;  // dial on the next poll()
}

SocketTransport::Peer& SocketTransport::peer_ref(NodeId id) {
  auto it = peers_.find(id);
  REX_REQUIRE(it != peers_.end(), "envelope for an unregistered peer");
  return it->second;
}

// ===== Outbound =====

void SocketTransport::queue_frame(Peer& peer, std::size_t frame_start) {
  peer.sizes.push_back(
      static_cast<std::uint32_t>(peer.txbuf.size() - frame_start));
}

void SocketTransport::pump_outbox() {
  std::vector<Envelope> batch;
  local_.take_outbox(options_.self, batch);
  if (batch.empty()) return;
  const double now_s = mono_now();
  for (Envelope& env : batch) {
    local_.record_send(env);
    Peer& peer = peer_ref(env.dst);
    PeerStats& stats = netstats_.peer(env.dst);
    if (peer.mark > 0 &&
        (peer.mark == peer.txbuf.size() || peer.mark >= kTxCompactWatermark)) {
      peer.txbuf.erase(peer.txbuf.begin(),
                       peer.txbuf.begin() +
                           static_cast<std::ptrdiff_t>(peer.mark));
      peer.head -= peer.mark;
      peer.mark = 0;
    }
    const std::size_t start = peer.txbuf.size();
    append_data(peer.txbuf, env);
    queue_frame(peer, start);
    stats.frames_tx++;
    stats.data_tx++;
  }
  batch.clear();  // release payload references before flushing
  for (auto& [id, peer] : peers_) {
    if (peer.head < peer.txbuf.size()) flush_peer(id, now_s);
  }
}

void SocketTransport::send_done(std::uint64_t epochs) {
  const double now_s = mono_now();
  for (auto& [id, peer] : peers_) {
    const std::size_t start = peer.txbuf.size();
    append_done(peer.txbuf, options_.self, epochs);
    queue_frame(peer, start);
    netstats_.peer(id).frames_tx++;
    flush_peer(id, now_s);
  }
}

void SocketTransport::flush_peer(NodeId id, double now_s) {
  Peer& peer = peers_.at(id);
  if (peer.fd < 0 || peer.connecting) return;
  PeerStats& stats = netstats_.peer(id);

  // The HELLO always leads the stream on a fresh connection, even when data
  // frames were queued while the link was down.
  while (peer.hello_head < peer.hello.size()) {
    const ssize_t n =
        ::send(peer.fd, peer.hello.data() + peer.hello_head,
               peer.hello.size() - peer.hello_head, MSG_NOSIGNAL);
    if (n > 0) {
      peer.hello_head += static_cast<std::size_t>(n);
      stats.bytes_tx += static_cast<std::uint64_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (!peer.want_write) {
        peer.want_write = true;
        update_interest(id);
      }
      return;
    }
    drop_connection(id, now_s);
    return;
  }

  while (peer.head < peer.txbuf.size()) {
    const ssize_t n = ::send(peer.fd, peer.txbuf.data() + peer.head,
                             peer.txbuf.size() - peer.head, MSG_NOSIGNAL);
    if (n > 0) {
      peer.head += static_cast<std::size_t>(n);
      stats.bytes_tx += static_cast<std::uint64_t>(n);
      while (!peer.sizes.empty() &&
             peer.head >= peer.mark + peer.sizes.front()) {
        peer.mark += peer.sizes.front();
        peer.sizes.pop_front();
      }
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (!peer.want_write) {
        peer.want_write = true;
        update_interest(id);
      }
      return;
    }
    drop_connection(id, now_s);
    return;
  }

  if (peer.mark == peer.txbuf.size()) {  // fully drained: recycle in place
    peer.txbuf.clear();
    peer.head = 0;
    peer.mark = 0;
  }
  if (peer.want_write) {
    peer.want_write = false;
    update_interest(id);
  }
}

void SocketTransport::update_interest(NodeId id) {
  Peer& peer = peers_.at(id);
  if (peer.fd < 0) return;
  epoll_event ev{};
  ev.events = EPOLLIN | (peer.want_write ? EPOLLOUT : 0u);
  ev.data.fd = peer.fd;
  REX_REQUIRE(::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, peer.fd, &ev) == 0,
              "epoll_ctl(mod) failed");
}

// ===== Connection lifecycle =====

void SocketTransport::start_connect(NodeId id, double now_s) {
  Peer& peer = peers_.at(id);
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* result = nullptr;
  const std::string port = std::to_string(peer.endpoint.port);
  if (::getaddrinfo(peer.endpoint.host.c_str(), port.c_str(), &hints,
                    &result) != 0 ||
      result == nullptr) {
    if (result != nullptr) ::freeaddrinfo(result);
    drop_connection(id, now_s);  // schedules the backoff retry
    return;
  }
  const int fd = ::socket(result->ai_family,
                          SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    ::freeaddrinfo(result);
    drop_connection(id, now_s);
    return;
  }
  set_nodelay(fd);
  const int rc = ::connect(fd, result->ai_addr, result->ai_addrlen);
  ::freeaddrinfo(result);
  if (rc != 0 && errno != EINPROGRESS) {
    ::close(fd);
    drop_connection(id, now_s);
    return;
  }

  peer.fd = fd;
  peer.connecting = (rc != 0);
  peer.want_write = peer.connecting;
  fd_to_peer_[fd] = id;
  epoll_event ev{};
  ev.events = EPOLLIN | (peer.connecting ? EPOLLOUT : 0u);
  ev.data.fd = fd;
  REX_REQUIRE(::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) == 0,
              "epoll_ctl(add) failed");
  if (!peer.connecting) on_connected(id, now_s);
}

void SocketTransport::on_connected(NodeId id, double now_s) {
  Peer& peer = peers_.at(id);
  peer.connecting = false;
  peer.hello.clear();
  peer.hello_head = 0;
  append_hello(peer.hello, options_.self, options_.fingerprint);
  netstats_.peer(id).frames_tx++;
  flush_peer(id, now_s);
}

void SocketTransport::drop_connection(NodeId id, double now_s) {
  Peer& peer = peers_.at(id);
  if (peer.fd >= 0) {
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, peer.fd, nullptr);
    fd_to_peer_.erase(peer.fd);
    ::close(peer.fd);
    peer.fd = -1;
  }
  peer.connecting = false;
  peer.identified = false;
  peer.want_write = false;
  peer.parser = FrameParser{};
  peer.hello.clear();
  peer.hello_head = 0;
  peer.head = peer.mark;  // resend the interrupted frame whole
  if (peer.initiator) {
    peer.backoff_s = peer.backoff_s <= 0.0
                         ? options_.reconnect_initial_s
                         : std::min(peer.backoff_s * 2.0,
                                    options_.reconnect_max_s);
    peer.next_attempt_s = now_s + peer.backoff_s;
  }
}

void SocketTransport::accept_ready() {
  for (;;) {
    const int fd =
        ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN or transient accept error: wait for the next event
    }
    set_nodelay(fd);
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
      ::close(fd);
      continue;
    }
    pending_.emplace(fd, Pending{});
  }
}

void SocketTransport::close_pending(int fd) {
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  ::close(fd);
  pending_.erase(fd);
}

void SocketTransport::check_hello(const HelloFrame& hello) const {
  REX_REQUIRE(hello.version == kWireVersion,
              "peer speaks a different wire version");
  REX_REQUIRE(hello.fingerprint == options_.fingerprint,
              "peer launched from a different cluster config "
              "(fingerprint mismatch)");
}

void SocketTransport::adopt_pending(int fd, Pending&& pending,
                                    const HelloFrame& hello, double now_s) {
  pending_.erase(fd);
  const NodeId id = hello.node;
  Peer& peer = peers_.at(id);
  if (peer.fd >= 0) drop_connection(id, now_s);  // stale conn superseded

  peer.fd = fd;
  peer.connecting = false;
  peer.want_write = false;
  fd_to_peer_[fd] = id;
  peer.parser = std::move(pending.parser);
  peer.identified = true;
  peer.backoff_s = 0.0;
  peer.next_ping_s = now_s;

  PeerStats& stats = netstats_.peer(id);
  stats.bytes_rx += pending.bytes_rx;
  stats.frames_rx++;  // the HELLO just consumed
  stats.record_connect();

  peer.hello.clear();
  peer.hello_head = 0;
  append_hello(peer.hello, options_.self, options_.fingerprint);
  stats.frames_tx++;
  flush_peer(id, now_s);
}

// ===== Inbound =====

std::size_t SocketTransport::read_peer(NodeId id, double now_s) {
  Peer& peer = peers_.at(id);
  PeerStats& stats = netstats_.peer(id);
  bool eof = false;
  std::uint8_t chunk[kReadChunk];
  while (peer.fd >= 0) {
    const ssize_t n = ::recv(peer.fd, chunk, sizeof chunk, 0);
    if (n > 0) {
      stats.bytes_rx += static_cast<std::uint64_t>(n);
      peer.parser.feed(BytesView(chunk, static_cast<std::size_t>(n)));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    eof = true;  // orderly close or hard error: drain what we have, drop
    break;
  }
  const std::size_t delivered = drain_frames(id, now_s);
  if (eof && peers_.at(id).fd >= 0) drop_connection(id, now_s);
  return delivered;
}

std::size_t SocketTransport::drain_frames(NodeId id, double now_s) {
  std::size_t delivered = 0;
  Peer& peer = peers_.at(id);
  PeerStats& stats = netstats_.peer(id);
  while (peer.fd >= 0) {
    std::optional<Frame> frame;
    try {
      frame = peer.parser.next();
    } catch (const Error&) {  // malformed stream: unrecoverable, drop
      drop_connection(id, now_s);
      return delivered;
    }
    if (!frame) break;
    stats.frames_rx++;
    switch (frame->type) {
      case FrameType::kHello: {
        HelloFrame hello;
        if (peer.identified || !parse_hello(frame->body, hello) ||
            hello.node != id) {
          drop_connection(id, now_s);
          return delivered;
        }
        check_hello(hello);
        peer.identified = true;
        peer.backoff_s = 0.0;
        peer.next_ping_s = now_s;
        stats.record_connect();
        break;
      }
      case FrameType::kData: {
        DataFrame data;
        if (!peer.identified || !parse_data(frame->body, data) ||
            data.src != id || data.dst != options_.self) {
          drop_connection(id, now_s);
          return delivered;
        }
        Bytes payload = local_.payload_pool().acquire();
        payload.assign(data.payload.begin(), data.payload.end());
        Envelope env;
        env.src = data.src;
        env.dst = data.dst;
        env.kind = data.kind;
        env.payload = SharedBytes::pooled(local_.payload_pool(),
                                          std::move(payload));
        local_.record_delivery(env);
        stats.data_rx++;
        REX_REQUIRE(static_cast<bool>(deliver_),
                    "deliver callback not installed");
        deliver_(std::move(env));
        delivered++;
        break;
      }
      case FrameType::kPing: {
        std::uint64_t token = 0;
        if (!parse_ping_token(frame->body, token)) {
          drop_connection(id, now_s);
          return delivered;
        }
        const std::size_t start = peer.txbuf.size();
        append_pong(peer.txbuf, token);
        queue_frame(peer, start);
        stats.frames_tx++;
        break;
      }
      case FrameType::kPong: {
        std::uint64_t token = 0;
        if (!parse_ping_token(frame->body, token)) {
          drop_connection(id, now_s);
          return delivered;
        }
        const std::uint64_t now_ns = mono_now_ns();
        if (now_ns >= token) {
          stats.record_rtt(static_cast<double>(now_ns - token) * 1e-9);
        }
        break;
      }
      case FrameType::kDone: {
        DoneFrame done;
        if (!parse_done(frame->body, done) || done.node != id) {
          drop_connection(id, now_s);
          return delivered;
        }
        peer.done = true;
        peer.done_epochs = done.epochs;
        break;
      }
    }
  }
  if (peer.fd >= 0 && peer.head < peer.txbuf.size()) {
    flush_peer(id, now_s);  // pongs queued above
  }
  return delivered;
}

// ===== Event loop =====

void SocketTransport::service_timers(double now_s) {
  for (auto& [id, peer] : peers_) {
    if (peer.initiator && peer.fd < 0 && now_s >= peer.next_attempt_s) {
      start_connect(id, now_s);
    }
    if (peer.identified && options_.ping_period_s > 0.0 &&
        now_s >= peer.next_ping_s) {
      const std::size_t start = peer.txbuf.size();
      append_ping(peer.txbuf, mono_now_ns());
      queue_frame(peer, start);
      netstats_.peer(id).frames_tx++;
      peer.next_ping_s = now_s + options_.ping_period_s;
      flush_peer(id, now_s);
    }
  }
}

std::size_t SocketTransport::poll(int timeout_ms) {
  service_timers(mono_now());

  // Shorten the wait if a reconnect or ping timer lands sooner.
  double deadline = std::numeric_limits<double>::infinity();
  for (const auto& [id, peer] : peers_) {
    if (peer.initiator && peer.fd < 0) {
      deadline = std::min(deadline, peer.next_attempt_s);
    }
    if (peer.identified && options_.ping_period_s > 0.0) {
      deadline = std::min(deadline, peer.next_ping_s);
    }
  }
  int timeout = std::max(timeout_ms, 0);
  if (deadline != std::numeric_limits<double>::infinity()) {
    const double wait_s = std::max(deadline - mono_now(), 0.0);
    timeout = std::min(timeout,
                       static_cast<int>(std::ceil(wait_s * 1000.0)));
  }

  epoll_event events[kMaxEvents];
  const int ready = ::epoll_wait(epoll_fd_, events, kMaxEvents, timeout);
  if (ready < 0) {
    REX_REQUIRE(errno == EINTR, "epoll_wait failed");
    return 0;
  }

  std::size_t delivered = 0;
  const double now_s = mono_now();
  for (int i = 0; i < ready; ++i) {
    const int fd = events[i].data.fd;
    const std::uint32_t flags = events[i].events;

    if (fd == listen_fd_) {
      accept_ready();
      continue;
    }

    if (auto pend_it = pending_.find(fd); pend_it != pending_.end()) {
      if ((flags & (EPOLLERR | EPOLLHUP)) != 0 && (flags & EPOLLIN) == 0) {
        close_pending(fd);
        continue;
      }
      // Read everything available; identify once the HELLO is complete.
      Pending& pending = pend_it->second;
      bool dead = false;
      std::uint8_t chunk[kReadChunk];
      for (;;) {
        const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
        if (n > 0) {
          pending.bytes_rx += static_cast<std::uint64_t>(n);
          pending.parser.feed(BytesView(chunk, static_cast<std::size_t>(n)));
          continue;
        }
        if (n < 0 && errno == EINTR) continue;
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
        dead = true;
        break;
      }
      std::optional<Frame> frame;
      try {
        frame = pending.parser.next();
      } catch (const Error&) {
        close_pending(fd);
        continue;
      }
      if (frame) {
        HelloFrame hello;
        if (frame->type != FrameType::kHello ||
            !parse_hello(frame->body, hello) ||
            peers_.find(hello.node) == peers_.end() ||
            peers_.at(hello.node).initiator) {
          close_pending(fd);
          continue;
        }
        check_hello(hello);
        Pending adopted = std::move(pending);
        adopt_pending(fd, std::move(adopted), hello, now_s);
        delivered += drain_frames(hello.node, now_s);
      } else if (dead) {
        close_pending(fd);
      }
      continue;
    }

    auto it = fd_to_peer_.find(fd);
    if (it == fd_to_peer_.end()) continue;  // dropped earlier in this batch
    const NodeId id = it->second;
    Peer& peer = peers_.at(id);

    if (peer.connecting) {
      int err = 0;
      socklen_t len = sizeof err;
      ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len);
      if (err != 0 || (flags & (EPOLLERR | EPOLLHUP)) != 0) {
        drop_connection(id, now_s);  // schedules the backoff retry
      } else {
        epoll_event ev{};
        ev.events = EPOLLIN;
        ev.data.fd = fd;
        ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev);
        peer.want_write = false;
        on_connected(id, now_s);
      }
      continue;
    }

    if ((flags & EPOLLIN) != 0) {
      delivered += read_peer(id, now_s);
    } else if ((flags & (EPOLLERR | EPOLLHUP)) != 0) {
      drop_connection(id, now_s);
      continue;
    }
    if (fd_to_peer_.count(fd) != 0 && (flags & EPOLLOUT) != 0) {
      flush_peer(id, now_s);
    }
  }

  service_timers(mono_now());
  return delivered;
}

// ===== Observers =====

bool SocketTransport::all_connected() const {
  for (const auto& [id, peer] : peers_) {
    if (!peer.identified) return false;
  }
  return true;
}

bool SocketTransport::tx_idle() const {
  for (const auto& [id, peer] : peers_) {
    if (peer.hello_head < peer.hello.size()) return false;
    if (peer.head < peer.txbuf.size()) return false;
  }
  return true;
}

std::size_t SocketTransport::peers_done() const {
  std::size_t count = 0;
  for (const auto& [id, peer] : peers_) count += peer.done ? 1 : 0;
  return count;
}

bool SocketTransport::peer_done(NodeId id) const {
  auto it = peers_.find(id);
  return it != peers_.end() && it->second.done;
}

}  // namespace rex::net
