// Network message envelope (the ZeroMQ substitution; DESIGN.md §1).
//
// The envelope metadata (src, dst, kind) travels in cleartext like TCP/ZMQ
// headers would; the payload is ciphertext between attested SGX nodes and
// plaintext in native runs (paper §III-B). The payload is a refcounted
// SharedBytes: a node fanning one blob out to k neighbors serializes (and
// stores) it once, and every per-edge envelope holds a reference — traffic
// accounting still charges each edge the full wire size, because that is
// what a real network would carry.
#pragma once

#include <cstdint>

#include "support/bytes.hpp"
#include "support/pool.hpp"

namespace rex::net {

using NodeId = std::uint32_t;

enum class MessageKind : std::uint8_t {
  kAttestation = 0,  // JSON handshake messages (cleartext by design)
  kProtocol = 1,     // REX payloads: raw-data batches or model blobs
};

struct Envelope {
  NodeId src = 0;
  NodeId dst = 0;
  MessageKind kind = MessageKind::kProtocol;
  SharedBytes payload;
  /// Transport bookkeeping (not on the wire): routing order stamp used to
  /// merge sharded inboxes back into deterministic delivery order.
  std::uint64_t arrival = 0;

  /// Bytes on the wire: payload plus the fixed header.
  [[nodiscard]] std::size_t wire_size() const {
    return payload.size() + kHeaderSize;
  }

  static constexpr std::size_t kHeaderSize =
      2 * sizeof(NodeId) + sizeof(MessageKind) + sizeof(std::uint32_t);
};

}  // namespace rex::net
