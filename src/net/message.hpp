// Network message envelope (the ZeroMQ substitution; DESIGN.md §1).
//
// The envelope metadata (src, dst, kind) travels in cleartext like TCP/ZMQ
// headers would; the payload is ciphertext between attested SGX nodes and
// plaintext in native runs (paper §III-B). The payload is a refcounted
// SharedBytes: a node fanning one blob out to k neighbors serializes (and
// stores) it once, and every per-edge envelope holds a reference — traffic
// accounting still charges each edge the full wire size, because that is
// what a real network would carry.
#pragma once

#include <cstdint>

#include "support/bytes.hpp"
#include "support/pool.hpp"

namespace rex::net {

using NodeId = std::uint32_t;

enum class MessageKind : std::uint8_t {
  kAttestation = 0,  // JSON handshake messages (cleartext by design)
  kProtocol = 1,     // REX payloads: raw-data batches or model blobs
  /// Rejoin state-resync exchange (DESIGN.md §6): a returning node's model
  /// pull request and the neighbor's model reply. A distinct header kind —
  /// not a payload kind — so the event engine can route resync traffic on
  /// the control path (released immediately, never deferred to an offline
  /// peer) without decrypting anything.
  kResync = 2,
};

struct Envelope {
  NodeId src = 0;
  NodeId dst = 0;
  MessageKind kind = MessageKind::kProtocol;
  SharedBytes payload;
  /// Transport bookkeeping (not on the wire): routing order stamp used to
  /// merge sharded inboxes back into deterministic delivery order.
  std::uint64_t arrival = 0;
  /// Simulated delivery timestamps (not on the wire), stamped by the event
  /// engine when the envelope is released per edge: transmission end on the
  /// sender's uplink and arrival at the destination (the engine checks each
  /// delivery fires exactly at deliver_at_s). Zero on the barrier path,
  /// where delivery happens at the round barrier and only the round clock
  /// carries time. deliver_at_s - sent_at_s is the edge's one-way latency
  /// from the active sim::LinkModel.
  double sent_at_s = 0.0;
  double deliver_at_s = 0.0;
  /// Fault-injection tag stamped by sim::ScenarioHarness (DESIGN.md §8).
  /// Bookkeeping only — not on the wire and excluded from wire_size(): a
  /// real adversary's tampered bytes are the same length, and a lost packet
  /// still occupied the links it crossed before vanishing. Zero (kNone) on
  /// every envelope when no harness is installed.
  std::uint8_t fault = 0;

  /// Bytes on the wire: payload plus the fixed header.
  [[nodiscard]] std::size_t wire_size() const {
    return payload.size() + kHeaderSize;
  }

  static constexpr std::size_t kHeaderSize =
      2 * sizeof(NodeId) + sizeof(MessageKind) + sizeof(std::uint32_t);
};

}  // namespace rex::net
