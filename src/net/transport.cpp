#include "net/transport.hpp"

#include "support/error.hpp"

namespace rex::net {

Transport::Transport(std::size_t node_count)
    : outboxes_(node_count),
      inboxes_(node_count),
      stats_(node_count),
      epoch_stats_(node_count) {}

void Transport::check_node(NodeId node) const {
  REX_REQUIRE(node < outboxes_.size(), "transport node id out of range");
}

void Transport::send(Envelope env) {
  check_node(env.src);
  check_node(env.dst);
  REX_REQUIRE(env.src != env.dst, "node sending to itself");
  outboxes_[env.src].push_back(std::move(env));
}

void Transport::flush_round() {
  for (auto& outbox : outboxes_) {
    while (!outbox.empty()) {
      Envelope env = std::move(outbox.front());
      outbox.pop_front();
      const std::size_t wire = env.wire_size();
      stats_[env.src].messages_sent++;
      stats_[env.src].bytes_sent += wire;
      stats_[env.dst].messages_received++;
      stats_[env.dst].bytes_received += wire;
      epoch_stats_[env.src].messages_sent++;
      epoch_stats_[env.src].bytes_sent += wire;
      epoch_stats_[env.dst].messages_received++;
      epoch_stats_[env.dst].bytes_received += wire;
      inboxes_[env.dst].push_back(std::move(env));
    }
  }
}

std::vector<Envelope> Transport::drain_inbox(NodeId node) {
  check_node(node);
  std::vector<Envelope> out(inboxes_[node].begin(), inboxes_[node].end());
  inboxes_[node].clear();
  return out;
}

std::size_t Transport::inbox_size(NodeId node) const {
  check_node(node);
  return inboxes_[node].size();
}

const TrafficStats& Transport::stats(NodeId node) const {
  check_node(node);
  return stats_[node];
}

std::uint64_t Transport::total_bytes_sent() const {
  std::uint64_t total = 0;
  for (const TrafficStats& s : stats_) total += s.bytes_sent;
  return total;
}

void Transport::reset_epoch_stats() {
  for (TrafficStats& s : epoch_stats_) s = TrafficStats{};
}

const TrafficStats& Transport::epoch_stats(NodeId node) const {
  check_node(node);
  return epoch_stats_[node];
}

}  // namespace rex::net
