#include "net/transport.hpp"

#include "support/error.hpp"

namespace rex::net {

Transport::Transport(std::size_t node_count)
    : outboxes_(node_count), inboxes_(node_count), traffic_(node_count) {}

void Transport::flush_round() {
  // Sender-major routing: each destination shard receives envelopes in
  // nondecreasing sender order, which drain_inbox() relies on to merge the
  // shards back into the global (sender id, send order) sequence.
  for (EnvelopeFifo& outbox : outboxes_) {
    while (!outbox.empty()) {
      Envelope env = outbox.pop_front();
      record_send(env);
      record_delivery(env);
      env.arrival = next_arrival_++;
      inboxes_[env.dst][env.src % kInboxShards].push_back(std::move(env));
    }
  }
}

std::vector<Envelope> Transport::drain_inbox(NodeId node) {
  std::vector<Envelope> out;
  drain_inbox(node, out);
  return out;
}

void Transport::drain_inbox(NodeId node, std::vector<Envelope>& out) {
  check_node(node);
  InboxShards& shards = inboxes_[node];
  std::size_t total = 0;
  for (const auto& shard : shards) total += shard.size();
  out.clear();
  out.reserve(total);
  // K-way merge on the routing stamp: each shard is FIFO (stamps increase),
  // so repeatedly taking the smallest front stamp reproduces the exact
  // routing order — (flush batch, sender id, send order).
  while (out.size() < total) {
    std::size_t best = kInboxShards;
    for (std::size_t s = 0; s < kInboxShards; ++s) {
      if (shards[s].empty()) continue;
      if (best == kInboxShards ||
          shards[s].front().arrival < shards[best].front().arrival) {
        best = s;
      }
    }
    out.push_back(shards[best].pop_front());
  }
}

std::size_t Transport::inbox_size(NodeId node) const {
  check_node(node);
  std::size_t total = 0;
  for (const auto& shard : inboxes_[node]) total += shard.size();
  return total;
}

std::vector<Envelope> Transport::take_outbox(NodeId src) {
  std::vector<Envelope> out;
  take_outbox(src, out);
  return out;
}

void Transport::take_outbox(NodeId src, std::vector<Envelope>& out) {
  check_node(src);
  EnvelopeFifo& outbox = outboxes_[src];
  out.reserve(out.size() + outbox.size());
  while (!outbox.empty()) {
    out.push_back(outbox.pop_front());
  }
}

std::uint64_t Transport::total_bytes_sent() const {
  std::uint64_t total = 0;
  for (const NodeTraffic& t : traffic_) total += t.total.bytes_sent;
  return total;
}

void Transport::reset_epoch_stats() {
  for (NodeTraffic& t : traffic_) t.epoch = TrafficStats{};
}

const TrafficStats& Transport::epoch_stats(NodeId node) const {
  check_node(node);
  return traffic_[node].epoch;
}

}  // namespace rex::net
