// In-process transport with per-node traffic accounting, sharded mailboxes,
// and two delivery disciplines.
//
// Sends always go to per-sender outboxes (no contention under node-parallel
// execution; a single sender never sends concurrently with itself). From
// there, two paths drain them:
//
//   Barrier path (synchronous rounds, attestation): flush_round() routes
//   every queued send into the destination's inbox shards in deterministic
//   (sender id, send order) sequence and accounts traffic for both ends;
//   drain_inbox() merges the shards back into that order, *moving* the
//   envelopes out.
//
//   Event path (sim::SimEngine): take_outbox(src) moves a sender's queued
//   envelopes out (accounting the send side); the engine schedules one
//   Deliver event per envelope with per-edge simulated latency and calls
//   record_delivery() at the delivery timestamp. Envelopes never touch the
//   inboxes on this path — the engine hands them straight to the host.
//
// Inboxes are sharded by sender id modulo kInboxShards — groundwork for
// concurrent per-edge delivery (senders mapping to distinct shards of one
// destination could deliver in parallel). Today every writer is serialized
// per destination: flush_round() is single-threaded and the engine hands
// event-path envelopes straight to hosts, so the shards carry no locks;
// the per-envelope arrival stamp keeps drained order deterministic.
#pragma once

#include <array>
#include <vector>

#include "net/message.hpp"
#include "support/error.hpp"

namespace rex::net {

/// Recycled FIFO mailbox: a vector plus a head cursor. Every mailbox in the
/// simulator fully drains between fills (outboxes at the flush/take, inbox
/// shards at the barrier drain), so popping the last element resets the
/// cursor and keeps the storage — steady state is allocation-free, and an
/// *idle* mailbox owns no heap at all (a node-count-sized deque array costs
/// ~600 B per empty deque in block bookkeeping; at 100k nodes that is real
/// memory). DESIGN.md §10.
struct EnvelopeFifo {
  std::vector<Envelope> items;
  std::size_t head = 0;

  [[nodiscard]] bool empty() const { return head == items.size(); }
  [[nodiscard]] std::size_t size() const { return items.size() - head; }
  [[nodiscard]] const Envelope& front() const { return items[head]; }
  void push_back(Envelope env) { items.push_back(std::move(env)); }
  [[nodiscard]] Envelope pop_front() {
    Envelope env = std::move(items[head++]);
    if (head == items.size()) {
      items.clear();
      head = 0;
    }
    return env;
  }
  /// Releases the backing storage (freed-on-churn-down diet).
  void release_storage() {
    REX_REQUIRE(empty(), "releasing a non-empty mailbox");
    items = std::vector<Envelope>{};
    head = 0;
  }
};

/// Cumulative per-node traffic counters.
struct TrafficStats {
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_received = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_received = 0;

  [[nodiscard]] std::uint64_t bytes_total() const {
    return bytes_sent + bytes_received;  // the paper's "data in + out"
  }
};

class Transport {
 public:
  /// Inbox shards per destination, keyed by sender id modulo this.
  static constexpr std::size_t kInboxShards = 8;

  explicit Transport(std::size_t node_count);

  [[nodiscard]] std::size_t node_count() const { return outboxes_.size(); }

  /// Queues an envelope from env.src. Thread-safe across distinct senders
  /// (each sender owns its outbox); a single sender must not send
  /// concurrently with itself. Inline (as are the other per-envelope
  /// accessors below): the event path crosses these once or more per
  /// delivered message, and at 10k nodes the out-of-line call was real
  /// profile time.
  void send(Envelope env) {
    check_node(env.src);
    check_node(env.dst);
    REX_REQUIRE(env.src != env.dst, "node sending to itself");
    outboxes_[env.src].push_back(std::move(env));
  }

  // ===== Barrier path =====

  /// Routes all queued sends into destination inbox shards. Call at the
  /// round barrier only (single-threaded). Accounts sender and receiver
  /// traffic in the current epoch window.
  void flush_round();

  /// Removes and returns everything deliverable to `node`, merged across
  /// shards back into (sender id, send order) sequence. Moves the
  /// envelopes — payloads are not copied.
  [[nodiscard]] std::vector<Envelope> drain_inbox(NodeId node);

  /// Allocation-free variant: drains into `out` (cleared first), so the
  /// per-round barrier drain recycles one caller-owned buffer instead of
  /// allocating a fresh vector per node per round.
  void drain_inbox(NodeId node, std::vector<Envelope>& out);

  /// Messages waiting for `node` (after flush_round()).
  [[nodiscard]] std::size_t inbox_size(NodeId node) const;

  // ===== Event path =====

  /// Moves out everything `src` queued since the last take, in send order.
  /// The caller owns delivery — and accounting: record_send() must be
  /// called per envelope when (if) it actually hits the wire. The engine
  /// may elide an envelope whose destination is known to be offline
  /// (DESIGN.md §6), and an elided envelope never consumed uplink.
  [[nodiscard]] std::vector<Envelope> take_outbox(NodeId src);

  /// Allocation-free variant: appends to `out` (typically a recycled
  /// SlotPool vector) instead of returning a fresh vector.
  void take_outbox(NodeId src, std::vector<Envelope>& out);

  /// Envelopes currently queued in `src`'s outbox (cheap emptiness probe
  /// for the engine's control-plane flush).
  [[nodiscard]] std::size_t outbox_size(NodeId src) const {
    check_node(src);
    return outboxes_[src].size();
  }

  /// Accounts the send side for one envelope the engine is releasing onto
  /// the wire (the event-path counterpart of flush_round's accounting).
  /// Touches only env.src's counters, so calls for distinct senders are
  /// safe to run concurrently.
  void record_send(const Envelope& env) {
    const std::size_t wire = env.wire_size();
    NodeTraffic& traffic = traffic_[env.src];
    traffic.total.messages_sent++;
    traffic.total.bytes_sent += wire;
    traffic.epoch.messages_sent++;
    traffic.epoch.bytes_sent += wire;
  }

  /// Shared recycling pool for payload buffers: senders acquire encode
  /// scratch here and wrap it into SharedBytes::pooled, so payload storage
  /// cycles back after the last envelope referencing it is consumed.
  [[nodiscard]] BufferPool& payload_pool() { return payload_pool_; }

  /// Accounts the receive side for one envelope the engine is handing to
  /// its destination host. Touches only env.dst's counters, so concurrent
  /// calls for distinct destinations are safe.
  void record_delivery(const Envelope& env) {
    const std::size_t wire = env.wire_size();
    NodeTraffic& traffic = traffic_[env.dst];
    traffic.total.messages_received++;
    traffic.total.bytes_received += wire;
    traffic.epoch.messages_received++;
    traffic.epoch.bytes_received += wire;
  }

  /// Frees the backing storage of `node`'s (drained) mailboxes — the
  /// freed-on-churn-down memory diet (DESIGN.md §10). Queues that still
  /// hold envelopes keep their storage. Serial phase only.
  void release_node_storage(NodeId node) {
    check_node(node);
    if (outboxes_[node].empty()) outboxes_[node].release_storage();
    for (EnvelopeFifo& shard : inboxes_[node]) {
      if (shard.empty()) shard.release_storage();
    }
  }

  // ===== Accounting =====

  [[nodiscard]] const TrafficStats& stats(NodeId node) const {
    check_node(node);
    return traffic_[node].total;
  }

  /// Sum of per-node sent bytes (every byte is counted once as sent and
  /// once as received).
  [[nodiscard]] std::uint64_t total_bytes_sent() const;

  /// Clears per-epoch counters kept by epoch_stats(); cumulative stats()
  /// are unaffected.
  void reset_epoch_stats();
  [[nodiscard]] const TrafficStats& epoch_stats(NodeId node) const;

 private:
  void check_node(NodeId node) const {
    REX_REQUIRE(node < outboxes_.size(), "transport node id out of range");
  }

  using InboxShards = std::array<EnvelopeFifo, kInboxShards>;

  /// Cumulative + per-epoch counters for one node, kept adjacent so one
  /// accounting update touches a single cache line (at 10k nodes every
  /// delivery hits a random node's counters; two parallel vectors cost two
  /// misses where one struct costs one).
  struct NodeTraffic {
    TrafficStats total;
    TrafficStats epoch;
  };
  static_assert(sizeof(NodeTraffic) <= 64, "one cache line per node");

  /// Declared before the mailboxes on purpose: envelopes queued in them
  /// release payload storage back into this pool on destruction, so the
  /// pool must be destroyed last (members destruct in reverse order).
  BufferPool payload_pool_;
  std::vector<EnvelopeFifo> outboxes_;  // indexed by sender
  std::vector<InboxShards> inboxes_;    // indexed by receiver
  std::vector<NodeTraffic> traffic_;            // indexed by node
  std::uint64_t next_arrival_ = 0;  // routing order stamp (flush_round only)
};

}  // namespace rex::net
