// In-process transport with per-node traffic accounting and round-barrier
// delivery.
//
// Decentralized REX runs synchronize on rounds (a node proceeds when it
// heard from all neighbors — paper §III-D); the simulator therefore delivers
// in two phases: sends during round r go to per-sender outboxes (no
// contention under the node-parallel thread pool), and flush_round() routes
// them into destination inboxes for round r+1 in deterministic (sender id,
// send order) sequence.
#pragma once

#include <deque>
#include <vector>

#include "net/message.hpp"

namespace rex::net {

/// Cumulative per-node traffic counters.
struct TrafficStats {
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_received = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_received = 0;

  [[nodiscard]] std::uint64_t bytes_total() const {
    return bytes_sent + bytes_received;  // the paper's "data in + out"
  }
};

class Transport {
 public:
  explicit Transport(std::size_t node_count);

  [[nodiscard]] std::size_t node_count() const { return outboxes_.size(); }

  /// Queues an envelope from env.src. Thread-safe across distinct senders
  /// (each sender owns its outbox); a single sender must not send
  /// concurrently with itself.
  void send(Envelope env);

  /// Routes all queued sends into destination inboxes. Call at the round
  /// barrier only (single-threaded).
  void flush_round();

  /// Removes and returns everything deliverable to `node`.
  [[nodiscard]] std::vector<Envelope> drain_inbox(NodeId node);

  /// Messages waiting for `node` (after flush_round()).
  [[nodiscard]] std::size_t inbox_size(NodeId node) const;

  [[nodiscard]] const TrafficStats& stats(NodeId node) const;

  /// Sum of per-node sent bytes (every byte is counted once as sent and
  /// once as received).
  [[nodiscard]] std::uint64_t total_bytes_sent() const;

  /// Clears per-epoch counters kept by epoch_stats(); cumulative stats()
  /// are unaffected.
  void reset_epoch_stats();
  [[nodiscard]] const TrafficStats& epoch_stats(NodeId node) const;

 private:
  void check_node(NodeId node) const;

  std::vector<std::deque<Envelope>> outboxes_;  // indexed by sender
  std::vector<std::deque<Envelope>> inboxes_;   // indexed by receiver
  std::vector<TrafficStats> stats_;
  std::vector<TrafficStats> epoch_stats_;
};

}  // namespace rex::net
