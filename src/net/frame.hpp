// Length-prefixed wire framing for the socket transport (DESIGN.md §11
// "Frame format").
//
// Every frame on a peer connection is [u32 length | u8 type | body], with
// `length` = 1 + body size, little-endian, so a byte stream self-delimits
// under arbitrary TCP segmentation. Data frames carry exactly the
// Envelope's accounted wire image — [u32 src | u32 dst | u8 kind | payload]
// — which is why Envelope::kHeaderSize already budgets a u32 length prefix:
// the simulated byte accounting and the real socket bytes agree to within
// the one frame-type byte. The payload inside a data frame is whatever the
// TrustedNode produced (AEAD-framed ciphertext between attested SGX nodes,
// DESIGN.md §6); the framing layer never inspects it.
//
// Control frames stay below the protocol: HELLO (peer identification plus a
// cluster-config fingerprint, so two processes launched from different
// configs refuse to talk instead of desynchronizing), PING/PONG (RTT
// estimation for the netstats ledger), DONE (epoch-target completion
// announcement, the cluster's shutdown barrier).
#pragma once

#include <cstdint>
#include <optional>

#include "net/message.hpp"
#include "support/bytes.hpp"

namespace rex::net {

enum class FrameType : std::uint8_t {
  kHello = 1,  // body: u32 magic | u16 version | u32 node id | u64 fingerprint
  kData = 2,   // body: u32 src | u32 dst | u8 kind | payload
  kPing = 3,   // body: u64 opaque echo token (sender's clock reading)
  kPong = 4,   // body: the PING's token, verbatim
  kDone = 5,   // body: u32 node id | u64 epochs completed
};

/// First bytes of every HELLO body; a connection whose first frame does not
/// carry it is not a rex_node and is dropped.
inline constexpr std::uint32_t kHelloMagic = 0x4E584552;  // "REXN"
inline constexpr std::uint16_t kWireVersion = 1;

/// Hard upper bound on a frame body. Model blobs are the largest legitimate
/// payloads (MiB-scale at paper dimensions); anything beyond this is a
/// corrupt or hostile length prefix and kills the connection instead of
/// driving a multi-GiB allocation.
inline constexpr std::size_t kMaxFrameBody = 64u << 20;

/// One decoded frame: the type plus a view into the parser's buffer (valid
/// until the next FrameParser::next / feed call).
struct Frame {
  FrameType type = FrameType::kData;
  BytesView body;
};

/// Decoded kData body. `payload` views the parser buffer; the transport
/// copies it into a pooled SharedBytes before handing it to the host.
struct DataFrame {
  NodeId src = 0;
  NodeId dst = 0;
  MessageKind kind = MessageKind::kProtocol;
  BytesView payload;
};

/// Decoded kHello body.
struct HelloFrame {
  std::uint16_t version = 0;
  NodeId node = 0;
  std::uint64_t fingerprint = 0;
};

/// Decoded kDone body.
struct DoneFrame {
  NodeId node = 0;
  std::uint64_t epochs = 0;
};

// ===== Encoders (append to `out`, never clear it) =====

void append_frame(Bytes& out, FrameType type, BytesView body);
void append_hello(Bytes& out, NodeId node, std::uint64_t fingerprint);
void append_data(Bytes& out, const Envelope& envelope);
void append_ping(Bytes& out, std::uint64_t token);
void append_pong(Bytes& out, std::uint64_t token);
void append_done(Bytes& out, NodeId node, std::uint64_t epochs);

// ===== Body decoders (false on malformed/truncated bodies) =====

[[nodiscard]] bool parse_data(BytesView body, DataFrame& out);
[[nodiscard]] bool parse_hello(BytesView body, HelloFrame& out);
[[nodiscard]] bool parse_ping_token(BytesView body, std::uint64_t& token);
[[nodiscard]] bool parse_done(BytesView body, DoneFrame& out);

/// Incremental frame extractor over a TCP byte stream. feed() appends raw
/// received bytes; next() yields complete frames in order, retaining any
/// trailing partial frame for the next feed. Consumed prefixes are compacted
/// lazily (only once the buffer fully drains, or grows past the watermark)
/// so a burst of small frames costs no per-frame memmove.
class FrameParser {
 public:
  void feed(BytesView bytes);

  /// Next complete frame, or nullopt when the buffer holds only a partial
  /// one. The returned views point into the internal buffer and stay valid
  /// until the next feed() call. Throws rex::Error on a malformed stream
  /// (oversized length prefix, unknown frame type) — the caller must drop
  /// the connection; there is no way to resynchronize a framed TCP stream.
  [[nodiscard]] std::optional<Frame> next();

  /// Bytes buffered but not yet returned as frames.
  [[nodiscard]] std::size_t pending() const { return buffer_.size() - head_; }

 private:
  Bytes buffer_;
  std::size_t head_ = 0;
};

}  // namespace rex::net
