// Per-peer network ledger for the socket transport (DESIGN.md §11
// "Netstats ledger").
//
// The simulation accounts traffic through net::Transport's per-node
// counters; a real deployment additionally needs per-*peer* operational
// state — how many bytes each link carried, how often it dropped and came
// back, and what the link's round-trip time looks like right now. Each
// rex_node keeps one NetStats ledger and dumps it as CSV next to the
// trajectory CSVs (write_netstats_csv; schema in docs/reporting.md).
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "net/message.hpp"

namespace rex::net {

struct PeerStats {
  // Socket-level byte counters (frames + framing overhead, i.e. what the
  // kernel actually carried for this peer — a superset of the envelope
  // wire_size accounting in net::Transport).
  std::uint64_t bytes_tx = 0;
  std::uint64_t bytes_rx = 0;
  std::uint64_t frames_tx = 0;
  std::uint64_t frames_rx = 0;
  /// Data (envelope) frames only, excluding hello/ping/pong/done control.
  std::uint64_t data_tx = 0;
  std::uint64_t data_rx = 0;

  /// Times a live connection to this peer was established. The first
  /// successful connect counts here and not in `reconnects`.
  std::uint64_t connects = 0;
  /// Re-establishments after a drop: connects minus the first.
  std::uint64_t reconnects = 0;

  // RTT estimate from PING/PONG exchanges, in wall-clock seconds. `rtt_s`
  // is the classic RFC 6298-style EWMA (alpha = 1/8) over samples;
  // min/max/last expose the spread.
  double rtt_s = 0.0;
  double rtt_last_s = 0.0;
  double rtt_min_s = 0.0;
  double rtt_max_s = 0.0;
  std::uint64_t rtt_samples = 0;

  void record_rtt(double sample_s) {
    rtt_last_s = sample_s;
    if (rtt_samples == 0) {
      rtt_s = rtt_min_s = rtt_max_s = sample_s;
    } else {
      rtt_s += (sample_s - rtt_s) / 8.0;
      if (sample_s < rtt_min_s) rtt_min_s = sample_s;
      if (sample_s > rtt_max_s) rtt_max_s = sample_s;
    }
    ++rtt_samples;
  }

  void record_connect() {
    if (connects > 0) ++reconnects;
    ++connects;
  }
};

/// Per-peer ledger: one PeerStats per remote node this transport ever
/// exchanged bytes with. Ordered map so CSV rows come out sorted by peer id.
class NetStats {
 public:
  [[nodiscard]] PeerStats& peer(NodeId id) { return peers_[id]; }
  [[nodiscard]] const std::map<NodeId, PeerStats>& peers() const {
    return peers_;
  }

  [[nodiscard]] std::uint64_t total_bytes_tx() const {
    std::uint64_t total = 0;
    for (const auto& [id, stats] : peers_) total += stats.bytes_tx;
    return total;
  }
  [[nodiscard]] std::uint64_t total_bytes_rx() const {
    std::uint64_t total = 0;
    for (const auto& [id, stats] : peers_) total += stats.bytes_rx;
    return total;
  }
  [[nodiscard]] std::uint64_t total_reconnects() const {
    std::uint64_t total = 0;
    for (const auto& [id, stats] : peers_) total += stats.reconnects;
    return total;
  }

 private:
  std::map<NodeId, PeerStats> peers_;
};

/// Writes the ledger as CSV, one row per peer:
/// self,peer,bytes_tx,bytes_rx,frames_tx,frames_rx,data_tx,data_rx,
/// connects,reconnects,rtt_ewma_s,rtt_last_s,rtt_min_s,rtt_max_s,
/// rtt_samples. Schema documented in docs/reporting.md.
void write_netstats_csv(const std::string& path, NodeId self,
                        const NetStats& stats);

}  // namespace rex::net
