#include "net/netstats.hpp"

#include <cstdio>
#include <memory>

#include "support/error.hpp"

namespace rex::net {

void write_netstats_csv(const std::string& path, NodeId self,
                        const NetStats& stats) {
  std::unique_ptr<std::FILE, int (*)(std::FILE*)> file(
      std::fopen(path.c_str(), "w"), &std::fclose);
  REX_REQUIRE(file != nullptr, "cannot open netstats csv for writing");
  std::fprintf(file.get(),
               "self,peer,bytes_tx,bytes_rx,frames_tx,frames_rx,data_tx,"
               "data_rx,connects,reconnects,rtt_ewma_s,rtt_last_s,rtt_min_s,"
               "rtt_max_s,rtt_samples\n");
  for (const auto& [peer, s] : stats.peers()) {
    std::fprintf(file.get(),
                 "%u,%u,%llu,%llu,%llu,%llu,%llu,%llu,%llu,%llu,%.9f,%.9f,"
                 "%.9f,%.9f,%llu\n",
                 static_cast<unsigned>(self), static_cast<unsigned>(peer),
                 static_cast<unsigned long long>(s.bytes_tx),
                 static_cast<unsigned long long>(s.bytes_rx),
                 static_cast<unsigned long long>(s.frames_tx),
                 static_cast<unsigned long long>(s.frames_rx),
                 static_cast<unsigned long long>(s.data_tx),
                 static_cast<unsigned long long>(s.data_rx),
                 static_cast<unsigned long long>(s.connects),
                 static_cast<unsigned long long>(s.reconnects), s.rtt_s,
                 s.rtt_last_s, s.rtt_min_s, s.rtt_max_s,
                 static_cast<unsigned long long>(s.rtt_samples));
  }
}

}  // namespace rex::net
