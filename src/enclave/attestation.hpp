// REX mutual attestation (paper §II-D, §III-A).
//
// Every pair of REX nodes mutually attests before exchanging sensitive data:
//   1. A -> B  challenge : nonce_A + A's ephemeral X25519 public key
//   2. B -> A  quote     : B's quote with user_data = H(pk_B || nonce_A),
//                          plus nonce_B and pk_B
//   3. A -> B  quote     : A's quote with user_data = H(pk_A || nonce_B)
// Each side verifies the peer quote through the DCAP service, requires the
// peer measurement to EQUAL its own (all REX nodes run identical code,
// §III-A), checks the user-data binding, and derives the session key
// HKDF(x25519(self_priv, peer_pub)). Messages are JSON in cleartext — they
// carry no secrets, and forgery fails because forgers cannot produce valid
// quotes (Algorithm 1 commentary in the paper).
//
// Simultaneous initiation is resolved deterministically: if both sides sent
// challenges, the lower node id stays initiator and the higher id responds.
#pragma once

#include <cstdint>
#include <optional>

#include "crypto/aead.hpp"
#include "crypto/drbg.hpp"
#include "crypto/x25519.hpp"
#include "enclave/platform.hpp"
#include "serialize/json.hpp"

namespace rex::enclave {

using NodeId = std::uint32_t;

/// Immutable identity of the enclave code this node runs.
struct EnclaveIdentity {
  Measurement measurement{};
};

enum class AttestationState {
  kIdle,
  kChallengeSent,
  kQuoteSent,  // responder: waiting for the initiator's quote
  kAttested,
  kFailed,
};

/// One pairwise attestation session (each node keeps one per neighbor).
class AttestationSession {
 public:
  AttestationSession(NodeId self, NodeId peer,
                     const EnclaveIdentity& identity,
                     const QuotingEnclave* quoting_enclave,
                     const DcapVerifier* verifier, crypto::Drbg* drbg);

  /// Starts the handshake; returns the challenge message to send.
  [[nodiscard]] serialize::Json initiate();

  /// Feeds one incoming attestation message; returns the reply to send, if
  /// any. Transitions to kAttested or kFailed as a side effect.
  [[nodiscard]] std::optional<serialize::Json> handle(
      const serialize::Json& message);

  [[nodiscard]] AttestationState state() const { return state_; }
  [[nodiscard]] bool attested() const {
    return state_ == AttestationState::kAttested;
  }

  /// Session key; valid only when attested().
  [[nodiscard]] const crypto::ChaChaKey& session_key() const;

  // ===== Explicit-sequence AEAD (churn-tolerant framing, DESIGN.md §6) ===
  //
  // Implicit counters desynchronize the moment a delivery is lost to an
  // outage: the sender's position advances, the receiver's does not, and
  // every later message fails authentication. Secure REX payloads therefore
  // carry their send sequence in cleartext (the DTLS approach); the
  // receiver derives the nonce from the explicit sequence and enforces
  // strictly-forward progress, so losses leave gaps instead of corruption
  // and replays of consumed positions are rejected. Resync messages use
  // their own sequence plane (nonce directions 2/3): they travel on the
  // control path and are not FIFO with the protocol stream.

  /// Allocates the next protocol / resync send position.
  [[nodiscard]] std::uint64_t next_send_sequence() { return send_sequence_++; }
  [[nodiscard]] std::uint64_t next_resync_send_sequence() {
    return resync_send_sequence_++;
  }
  /// Nonce either side uses for the given position of each stream.
  [[nodiscard]] crypto::ChaChaNonce send_nonce_for(std::uint64_t seq) const;
  [[nodiscard]] crypto::ChaChaNonce recv_nonce_for(std::uint64_t seq) const;
  [[nodiscard]] crypto::ChaChaNonce resync_send_nonce_for(
      std::uint64_t seq) const;
  [[nodiscard]] crypto::ChaChaNonce resync_recv_nonce_for(
      std::uint64_t seq) const;
  /// Accepts a successfully-opened message's position: false = replay of a
  /// consumed position (call only after the AEAD verified).
  [[nodiscard]] bool accept_recv_sequence(std::uint64_t seq) {
    if (seq < recv_sequence_) return false;
    recv_sequence_ = seq + 1;
    return true;
  }
  [[nodiscard]] bool accept_resync_recv_sequence(std::uint64_t seq) {
    if (seq < resync_recv_sequence_) return false;
    resync_recv_sequence_ = seq + 1;
    return true;
  }
  /// Highest accepted protocol position + 1 (stale-key handover: the old
  /// session's receive watermark continues in TrustedNode::StaleKey).
  [[nodiscard]] std::uint64_t recv_sequence() const { return recv_sequence_; }

  /// Bytes of attestation traffic this session has produced (network
  /// accounting; attestation is cheap but not free).
  [[nodiscard]] std::size_t bytes_sent() const { return bytes_sent_; }

 private:
  [[nodiscard]] serialize::Json make_quote_message();
  [[nodiscard]] bool verify_peer_quote(const serialize::Json& message);
  void derive_session_key();
  [[nodiscard]] serialize::Json track(serialize::Json message);

  NodeId self_;
  NodeId peer_;
  EnclaveIdentity identity_;
  const QuotingEnclave* quoting_enclave_;
  const DcapVerifier* verifier_;
  crypto::Drbg* drbg_;

  AttestationState state_ = AttestationState::kIdle;
  crypto::X25519Key private_key_{};
  crypto::X25519Key public_key_{};
  crypto::X25519Key peer_public_{};
  std::array<std::uint8_t, 16> my_nonce_{};    // challenge we issued
  std::array<std::uint8_t, 16> peer_nonce_{};  // challenge we must answer
  bool have_peer_nonce_ = false;
  crypto::ChaChaKey session_key_{};
  std::uint64_t send_sequence_ = 0;
  std::uint64_t recv_sequence_ = 0;
  std::uint64_t resync_send_sequence_ = 0;
  std::uint64_t resync_recv_sequence_ = 0;
  std::size_t bytes_sent_ = 0;
};

/// user_data binding: H(public_key || responder_nonce).
[[nodiscard]] std::array<std::uint8_t, 32> quote_user_data(
    const crypto::X25519Key& public_key, BytesView nonce);

}  // namespace rex::enclave
