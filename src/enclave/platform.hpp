// Simulated SGX platform services: measurements, reports, quotes, and a
// DCAP-style verification service (paper §II-C, §II-D).
//
// Substitution note (DESIGN.md §1): real SGX signs quotes with
// Intel-provisioned PCK keys verified through DCAP collateral. Here the
// Quoting Enclave MACs the report with a per-platform key that the simulated
// DCAP service also knows — the *trust decisions* (measurement comparison,
// user-data binding, signature validity) are identical, only the asymmetric
// primitive is replaced.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "crypto/drbg.hpp"
#include "crypto/hmac.hpp"
#include "crypto/sha256.hpp"
#include "support/bytes.hpp"

namespace rex::enclave {

using PlatformId = std::uint32_t;

/// MRENCLAVE analogue: SHA-256 of the enclave's initial code+data image.
using Measurement = crypto::Sha256Digest;

/// Computes the measurement of an enclave image. In the simulation the
/// "image" is a canonical string naming the code version and build options —
/// two enclaves share a measurement iff they run the same code, which is
/// exactly the property REX's mutual attestation checks (§III-A).
[[nodiscard]] Measurement measure_enclave_image(std::string_view image);

/// Hardware-signed attestation statement about one enclave (the report
/// rolled into a quote by the Quoting Enclave).
struct Report {
  Measurement measurement{};
  /// Free-form 32 bytes; REX stores a hash binding the ECDH public key and
  /// the peer's challenge nonce (§III-A).
  std::array<std::uint8_t, 32> user_data{};

  [[nodiscard]] Bytes serialize() const;
  [[nodiscard]] static Report deserialize(BytesView payload);
};

/// A report signed by the platform's Quoting Enclave.
struct Quote {
  Report report;
  PlatformId platform = 0;
  crypto::Sha256Digest signature{};

  [[nodiscard]] Bytes serialize() const;
  [[nodiscard]] static Quote deserialize(BytesView payload);
};

/// Per-platform quoting service (one per physical machine).
class QuotingEnclave {
 public:
  QuotingEnclave(PlatformId id, crypto::Drbg& key_source);

  [[nodiscard]] PlatformId platform() const { return platform_; }

  /// Converts a local report into a remotely-verifiable quote.
  [[nodiscard]] Quote quote(const Report& report) const;

 private:
  friend class DcapVerifier;
  PlatformId platform_;
  crypto::ChaChaKey platform_key_;
};

/// Simulated DCAP attestation service: knows the genuine platforms'
/// verification material and checks quote signatures.
class DcapVerifier {
 public:
  /// Registers a genuine platform (simulates Intel provisioning).
  void register_platform(const QuotingEnclave& qe);

  /// True iff the quote was signed by a registered platform's key.
  [[nodiscard]] bool verify(const Quote& quote) const;

  [[nodiscard]] std::size_t platform_count() const { return keys_.size(); }

 private:
  std::map<PlatformId, crypto::ChaChaKey> keys_;
};

}  // namespace rex::enclave
