#include "enclave/platform.hpp"

#include <cstring>

#include "serialize/binary.hpp"
#include "support/error.hpp"

namespace rex::enclave {

Measurement measure_enclave_image(std::string_view image) {
  return crypto::sha256(to_bytes(image));
}

Bytes Report::serialize() const {
  serialize::BinaryWriter w;
  w.raw(BytesView(measurement.data(), measurement.size()));
  w.raw(BytesView(user_data.data(), user_data.size()));
  return w.take();
}

Report Report::deserialize(BytesView payload) {
  serialize::BinaryReader r(payload);
  Report report;
  const BytesView m = r.raw(report.measurement.size());
  std::copy(m.begin(), m.end(), report.measurement.begin());
  const BytesView u = r.raw(report.user_data.size());
  std::copy(u.begin(), u.end(), report.user_data.begin());
  r.expect_end();
  return report;
}

Bytes Quote::serialize() const {
  serialize::BinaryWriter w;
  w.bytes(report.serialize());
  w.u32(platform);
  w.raw(BytesView(signature.data(), signature.size()));
  return w.take();
}

Quote Quote::deserialize(BytesView payload) {
  serialize::BinaryReader r(payload);
  Quote quote;
  quote.report = Report::deserialize(r.bytes());
  quote.platform = r.u32();
  const BytesView s = r.raw(quote.signature.size());
  std::copy(s.begin(), s.end(), quote.signature.begin());
  r.expect_end();
  return quote;
}

QuotingEnclave::QuotingEnclave(PlatformId id, crypto::Drbg& key_source)
    : platform_(id), platform_key_(key_source.next_key()) {}

Quote QuotingEnclave::quote(const Report& report) const {
  Quote q;
  q.report = report;
  q.platform = platform_;
  q.signature = crypto::hmac_sha256(
      BytesView(platform_key_.data(), platform_key_.size()),
      report.serialize());
  return q;
}

void DcapVerifier::register_platform(const QuotingEnclave& qe) {
  keys_[qe.platform_] = qe.platform_key_;
}

bool DcapVerifier::verify(const Quote& quote) const {
  const auto it = keys_.find(quote.platform);
  if (it == keys_.end()) return false;  // unknown platform: not genuine
  const crypto::Sha256Digest expected = crypto::hmac_sha256(
      BytesView(it->second.data(), it->second.size()),
      quote.report.serialize());
  return crypto::constant_time_equal(
      BytesView(expected.data(), expected.size()),
      BytesView(quote.signature.data(), quote.signature.size()));
}

}  // namespace rex::enclave
