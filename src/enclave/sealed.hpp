// Sealed storage: encrypt enclave secrets for persistence outside the
// enclave (SGX sealing). The sealing key is derived from the platform
// identity and the enclave measurement, so only the same enclave code on the
// same platform can unseal — the MRENCLAVE sealing policy.
#pragma once

#include <optional>

#include "crypto/aead.hpp"
#include "enclave/platform.hpp"
#include "support/bytes.hpp"

namespace rex::enclave {

class SealingKey {
 public:
  /// Derives the sealing key for (platform secret, measurement).
  SealingKey(const crypto::ChaChaKey& platform_secret,
             const Measurement& measurement);

  /// Seals `plaintext` with a fresh nonce drawn from `nonce_counter`
  /// (callers keep a monotonic counter). Output: nonce || ciphertext || tag.
  [[nodiscard]] Bytes seal(BytesView plaintext,
                           std::uint64_t nonce_counter) const;

  /// Unseals; nullopt when the blob was tampered with or sealed by a
  /// different enclave/platform.
  [[nodiscard]] std::optional<Bytes> unseal(BytesView sealed) const;

 private:
  crypto::ChaChaKey key_{};
};

}  // namespace rex::enclave
