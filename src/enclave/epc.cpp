// EpcModel is header-only; this translation unit pins the vtable-free class
// into the library and hosts its (compile-time) sanity checks.
#include "enclave/epc.hpp"

namespace rex::enclave {

static_assert(EpcConfig{}.total_bytes == 128ull << 20,
              "paper hardware: 128 MiB EPC");

}  // namespace rex::enclave
