#include "enclave/attestation.hpp"

#include <cstring>

#include "crypto/hmac.hpp"
#include "support/error.hpp"

namespace rex::enclave {

namespace {

constexpr std::uint32_t kDirectionLowerToHigher = 0;
constexpr std::uint32_t kDirectionHigherToLower = 1;
// Resync streams (DESIGN.md §6) live in their own direction plane so their
// counters never collide with the protocol streams above.
constexpr std::uint32_t kDirectionResyncLowerToHigher = 2;
constexpr std::uint32_t kDirectionResyncHigherToLower = 3;

std::string hex_of(BytesView b) { return hex_encode(b); }

}  // namespace

std::array<std::uint8_t, 32> quote_user_data(
    const crypto::X25519Key& public_key, BytesView nonce) {
  Bytes material(public_key.begin(), public_key.end());
  append(material, nonce);
  return crypto::sha256(material);
}

AttestationSession::AttestationSession(NodeId self, NodeId peer,
                                       const EnclaveIdentity& identity,
                                       const QuotingEnclave* quoting_enclave,
                                       const DcapVerifier* verifier,
                                       crypto::Drbg* drbg)
    : self_(self),
      peer_(peer),
      identity_(identity),
      quoting_enclave_(quoting_enclave),
      verifier_(verifier),
      drbg_(drbg) {
  REX_REQUIRE(self != peer, "attestation session with self");
  REX_REQUIRE(quoting_enclave_ && verifier_ && drbg_,
              "attestation session needs platform services");
  private_key_ = drbg_->next_x25519_private();
  public_key_ = crypto::x25519_public_key(private_key_);
}

serialize::Json AttestationSession::track(serialize::Json message) {
  bytes_sent_ += message.dump().size();
  return message;
}

serialize::Json AttestationSession::initiate() {
  REX_REQUIRE(state_ == AttestationState::kIdle,
              "attestation already in progress");
  drbg_->generate(my_nonce_.data(), my_nonce_.size());
  state_ = AttestationState::kChallengeSent;

  serialize::Json msg = serialize::Json::object();
  msg["type"] = "att_challenge";
  msg["from"] = static_cast<std::int64_t>(self_);
  msg["nonce"] = hex_of(BytesView(my_nonce_.data(), my_nonce_.size()));
  msg["pubkey"] = hex_of(BytesView(public_key_.data(), public_key_.size()));
  return track(std::move(msg));
}

serialize::Json AttestationSession::make_quote_message() {
  Report report;
  report.measurement = identity_.measurement;
  report.user_data = quote_user_data(
      public_key_, BytesView(peer_nonce_.data(), peer_nonce_.size()));
  const Quote quote = quoting_enclave_->quote(report);

  serialize::Json msg = serialize::Json::object();
  msg["type"] = "att_quote";
  msg["from"] = static_cast<std::int64_t>(self_);
  msg["pubkey"] = hex_of(BytesView(public_key_.data(), public_key_.size()));
  msg["quote"] = hex_of(quote.serialize());
  // Responder includes its own challenge so the initiator can quote back.
  msg["nonce"] = hex_of(BytesView(my_nonce_.data(), my_nonce_.size()));
  return track(std::move(msg));
}

bool AttestationSession::verify_peer_quote(const serialize::Json& message) {
  const Bytes quote_bytes = hex_decode(message.at("quote").as_string());
  const Bytes pub_bytes = hex_decode(message.at("pubkey").as_string());
  if (pub_bytes.size() != peer_public_.size()) return false;
  std::copy(pub_bytes.begin(), pub_bytes.end(), peer_public_.begin());

  Quote quote;
  try {
    quote = Quote::deserialize(quote_bytes);
  } catch (const Error&) {
    return false;  // malformed quote: treat as attestation failure
  }
  // (1) Genuine platform signature via the DCAP service.
  if (!verifier_->verify(quote)) return false;
  // (2) Identical code: the peer's measurement must equal our own (§III-A).
  if (!crypto::constant_time_equal(
          BytesView(quote.report.measurement.data(),
                    quote.report.measurement.size()),
          BytesView(identity_.measurement.data(),
                    identity_.measurement.size()))) {
    return false;
  }
  // (3) Key binding: user_data commits to the pubkey and OUR nonce
  // (freshness: the quote answers our challenge, no replay).
  const auto expected = quote_user_data(
      peer_public_, BytesView(my_nonce_.data(), my_nonce_.size()));
  return crypto::constant_time_equal(
      BytesView(expected.data(), expected.size()),
      BytesView(quote.report.user_data.data(),
                quote.report.user_data.size()));
}

void AttestationSession::derive_session_key() {
  crypto::X25519Key shared{};
  if (!crypto::x25519_shared_secret(private_key_, peer_public_, shared)) {
    state_ = AttestationState::kFailed;
    return;
  }
  // Symmetric derivation: both sides bind the (ordered) pair of node ids.
  Bytes info = to_bytes("rex-session-v1");
  const NodeId lo = std::min(self_, peer_), hi = std::max(self_, peer_);
  info.push_back(static_cast<std::uint8_t>(lo >> 8));
  info.push_back(static_cast<std::uint8_t>(lo));
  info.push_back(static_cast<std::uint8_t>(hi >> 8));
  info.push_back(static_cast<std::uint8_t>(hi));
  const Bytes okm = crypto::hkdf(to_bytes("rex-attest"),
                                 BytesView(shared.data(), shared.size()),
                                 info, session_key_.size());
  std::memcpy(session_key_.data(), okm.data(), session_key_.size());
}

std::optional<serialize::Json> AttestationSession::handle(
    const serialize::Json& message) {
  const std::string& type = message.at("type").as_string();
  const NodeId from = static_cast<NodeId>(message.at("from").as_int());
  REX_REQUIRE(from == peer_, "attestation message from unexpected node");

  if (type == "att_challenge") {
    if (state_ == AttestationState::kChallengeSent && self_ < peer_) {
      // Simultaneous initiation: lower id stays initiator; ignore the
      // peer's challenge (it will answer ours).
      return std::nullopt;
    }
    // Act as responder (possibly abandoning our own initiation).
    const Bytes nonce = hex_decode(message.at("nonce").as_string());
    REX_REQUIRE(nonce.size() == peer_nonce_.size(),
                "attestation nonce size mismatch");
    std::copy(nonce.begin(), nonce.end(), peer_nonce_.begin());
    have_peer_nonce_ = true;
    // Fresh challenge for the quote we expect back.
    drbg_->generate(my_nonce_.data(), my_nonce_.size());
    state_ = AttestationState::kQuoteSent;
    return make_quote_message();
  }

  if (type == "att_quote") {
    if (state_ == AttestationState::kChallengeSent) {
      // Initiator receiving the responder's quote.
      if (!verify_peer_quote(message)) {
        state_ = AttestationState::kFailed;
        return std::nullopt;
      }
      // Answer the responder's challenge with our own quote.
      const Bytes nonce = hex_decode(message.at("nonce").as_string());
      REX_REQUIRE(nonce.size() == peer_nonce_.size(),
                  "attestation nonce size mismatch");
      std::copy(nonce.begin(), nonce.end(), peer_nonce_.begin());
      have_peer_nonce_ = true;
      derive_session_key();
      if (state_ == AttestationState::kFailed) return std::nullopt;
      state_ = AttestationState::kAttested;
      return make_quote_message();
    }
    if (state_ == AttestationState::kQuoteSent) {
      // Responder receiving the initiator's quote: final verification.
      if (!verify_peer_quote(message)) {
        state_ = AttestationState::kFailed;
        return std::nullopt;
      }
      derive_session_key();
      if (state_ == AttestationState::kFailed) return std::nullopt;
      state_ = AttestationState::kAttested;
      return std::nullopt;
    }
    // Unexpected quote (replay or confusion): fail closed.
    state_ = AttestationState::kFailed;
    return std::nullopt;
  }

  REX_REQUIRE(false, "unknown attestation message type: " + type);
  return std::nullopt;  // unreachable
}

const crypto::ChaChaKey& AttestationSession::session_key() const {
  REX_REQUIRE(attested(), "session key requested before attestation");
  return session_key_;
}

crypto::ChaChaNonce AttestationSession::send_nonce_for(
    std::uint64_t seq) const {
  const std::uint32_t direction =
      self_ < peer_ ? kDirectionLowerToHigher : kDirectionHigherToLower;
  return crypto::nonce_from_sequence(seq, direction);
}

crypto::ChaChaNonce AttestationSession::recv_nonce_for(
    std::uint64_t seq) const {
  const std::uint32_t direction =
      peer_ < self_ ? kDirectionLowerToHigher : kDirectionHigherToLower;
  return crypto::nonce_from_sequence(seq, direction);
}

crypto::ChaChaNonce AttestationSession::resync_send_nonce_for(
    std::uint64_t seq) const {
  const std::uint32_t direction = self_ < peer_
                                      ? kDirectionResyncLowerToHigher
                                      : kDirectionResyncHigherToLower;
  return crypto::nonce_from_sequence(seq, direction);
}

crypto::ChaChaNonce AttestationSession::resync_recv_nonce_for(
    std::uint64_t seq) const {
  const std::uint32_t direction = peer_ < self_
                                      ? kDirectionResyncLowerToHigher
                                      : kDirectionResyncHigherToLower;
  return crypto::nonce_from_sequence(seq, direction);
}

}  // namespace rex::enclave
