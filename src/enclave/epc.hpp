// Enclave Page Cache model (paper §II-C, §IV-D).
//
// SGXv1 machines have a fixed EPC (128 MiB on the paper's Xeon E-2288G, of
// which 93.5 MiB are usable by enclaves). When resident enclave memory
// exceeds that, pages are encrypted/evicted to regular RAM and faulted back
// on access — the mechanism behind the Table IV overhead jump from the
// 610-user to the 15 000-user dataset. The model exposes a smooth slowdown
// factor for memory-bound work as a function of the overcommit ratio.
#pragma once

#include <cstddef>

namespace rex::enclave {

struct EpcConfig {
  /// Total reserved EPC (informational).
  std::size_t total_bytes = 128ull << 20;
  /// Usable by enclaves after SGX metadata (§IV-D cites 93.5 MiB).
  std::size_t available_bytes = static_cast<std::size_t>(93.5 * 1024 * 1024);
  /// Paging slowdown at 2x overcommit; the factor interpolates linearly in
  /// the overcommit ratio: factor = 1 + paging_penalty * max(0, ratio - 1).
  /// Calibrated against the Table IV native-vs-SGX overhead jump.
  double paging_penalty = 0.55;
};

class EpcModel {
 public:
  EpcModel() = default;
  explicit EpcModel(const EpcConfig& config) : config_(config) {}

  [[nodiscard]] const EpcConfig& config() const { return config_; }

  /// Overcommit ratio: resident / available (1.0 = exactly full).
  [[nodiscard]] double occupancy(std::size_t resident_bytes) const {
    return static_cast<double>(resident_bytes) /
           static_cast<double>(config_.available_bytes);
  }

  [[nodiscard]] bool beyond_epc(std::size_t resident_bytes) const {
    return resident_bytes > config_.available_bytes;
  }

  /// Multiplier (>= 1) applied to memory-bound stage costs.
  [[nodiscard]] double slowdown_factor(std::size_t resident_bytes) const {
    const double over = occupancy(resident_bytes) - 1.0;
    return over <= 0.0 ? 1.0 : 1.0 + config_.paging_penalty * over;
  }

 private:
  EpcConfig config_;
};

}  // namespace rex::enclave
