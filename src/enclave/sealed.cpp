#include "enclave/sealed.hpp"

#include <cstring>

#include "crypto/hmac.hpp"

namespace rex::enclave {

SealingKey::SealingKey(const crypto::ChaChaKey& platform_secret,
                       const Measurement& measurement) {
  // HKDF(platform secret, measurement) — binds the key to both identities
  // like SGX's EGETKEY with the MRENCLAVE policy.
  const Bytes okm = crypto::hkdf(
      BytesView(measurement.data(), measurement.size()),
      BytesView(platform_secret.data(), platform_secret.size()),
      to_bytes("rex-sealing-v1"), key_.size());
  std::memcpy(key_.data(), okm.data(), key_.size());
}

Bytes SealingKey::seal(BytesView plaintext, std::uint64_t nonce_counter) const {
  // Direction tag 0x5EA1 keeps sealing nonces disjoint from channel nonces.
  const crypto::ChaChaNonce nonce =
      crypto::nonce_from_sequence(nonce_counter, /*direction=*/0x5EA1);
  Bytes out(nonce.begin(), nonce.end());
  append(out, crypto::aead_seal(key_, nonce, to_bytes("rex-sealed"),
                                plaintext));
  return out;
}

std::optional<Bytes> SealingKey::unseal(BytesView sealed) const {
  if (sealed.size() < crypto::kChaChaNonceSize + crypto::kAeadTagSize) {
    return std::nullopt;
  }
  crypto::ChaChaNonce nonce;
  std::copy(sealed.begin(),
            sealed.begin() + static_cast<long>(nonce.size()), nonce.begin());
  return crypto::aead_open(key_, nonce, to_bytes("rex-sealed"),
                           sealed.subspan(nonce.size()));
}

}  // namespace rex::enclave
