// Enclave runtime: the trusted/untrusted boundary with cost accounting.
//
// REX compiles the same protocol code for native and SGX runs (paper
// §III-E); here the difference is the Runtime handed to a node. The SGX
// runtime counts every ecall/ocall transition and tracks resident enclave
// memory (for the EPC model); the native runtime is free. The simulation's
// CostModel converts these counters into the simulated-time overheads of
// Figs 6/7 and Table IV.
#pragma once

#include <cstdint>

#include "enclave/epc.hpp"

namespace rex::enclave {

enum class SecurityMode {
  kNative,        // no SGX: plaintext payloads, no transition costs
  kSgxSimulated,  // enclave semantics: encrypted payloads, counted costs
};

/// Transition and memory counters for one enclave.
struct RuntimeStats {
  std::uint64_t ecalls = 0;
  std::uint64_t ocalls = 0;
  std::uint64_t ecall_bytes = 0;      // data copied into the enclave
  std::uint64_t ocall_bytes = 0;      // data copied out of the enclave
  std::uint64_t sealed_bytes = 0;     // AEAD-processed payload bytes
  std::size_t resident_bytes = 0;     // current enclave heap residency
  std::size_t peak_resident_bytes = 0;
};

class Runtime {
 public:
  Runtime(SecurityMode mode, const EpcConfig& epc = {})
      : mode_(mode), epc_(epc) {}

  [[nodiscard]] SecurityMode mode() const { return mode_; }
  [[nodiscard]] bool secure() const {
    return mode_ == SecurityMode::kSgxSimulated;
  }

  /// Boundary crossings (no-ops for accounting purposes in native mode —
  /// a native build has plain function calls here). Inline: the learning
  /// cell crosses the boundary millions of times per run and these are
  /// two-instruction counter bumps.
  void record_ecall(std::size_t argument_bytes) {
    if (!secure()) return;
    ++stats_.ecalls;
    stats_.ecall_bytes += argument_bytes;
  }
  void record_ocall(std::size_t argument_bytes) {
    if (!secure()) return;
    ++stats_.ocalls;
    stats_.ocall_bytes += argument_bytes;
  }

  /// Payload bytes passed through the channel AEAD.
  void record_crypto(std::size_t bytes) {
    if (!secure()) return;
    stats_.sealed_bytes += bytes;
  }

  /// Enclave heap accounting (allocations inside the trusted partition).
  void track_allocation(std::size_t bytes) {
    stats_.resident_bytes += bytes;
    if (stats_.resident_bytes > stats_.peak_resident_bytes) {
      stats_.peak_resident_bytes = stats_.resident_bytes;
    }
  }
  void track_release(std::size_t bytes);
  void set_resident(std::size_t bytes) {
    stats_.resident_bytes = bytes;
    if (stats_.resident_bytes > stats_.peak_resident_bytes) {
      stats_.peak_resident_bytes = stats_.resident_bytes;
    }
  }

  [[nodiscard]] const RuntimeStats& stats() const { return stats_; }
  [[nodiscard]] const EpcModel& epc() const { return epc_; }

  /// Current paging slowdown for memory-bound work (1.0 in native mode).
  [[nodiscard]] double memory_slowdown() const;

  /// Resets the per-epoch counters (resident memory is preserved).
  void reset_epoch_counters();

 private:
  SecurityMode mode_;
  EpcModel epc_;
  RuntimeStats stats_;
};

}  // namespace rex::enclave
