#include "enclave/runtime.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace rex::enclave {

void Runtime::record_ecall(std::size_t argument_bytes) {
  if (!secure()) return;
  ++stats_.ecalls;
  stats_.ecall_bytes += argument_bytes;
}

void Runtime::record_ocall(std::size_t argument_bytes) {
  if (!secure()) return;
  ++stats_.ocalls;
  stats_.ocall_bytes += argument_bytes;
}

void Runtime::record_crypto(std::size_t bytes) {
  if (!secure()) return;
  stats_.sealed_bytes += bytes;
}

void Runtime::track_allocation(std::size_t bytes) {
  stats_.resident_bytes += bytes;
  stats_.peak_resident_bytes =
      std::max(stats_.peak_resident_bytes, stats_.resident_bytes);
}

void Runtime::track_release(std::size_t bytes) {
  REX_CHECK(bytes <= stats_.resident_bytes,
            "releasing more enclave memory than allocated");
  stats_.resident_bytes -= bytes;
}

void Runtime::set_resident(std::size_t bytes) {
  stats_.resident_bytes = bytes;
  stats_.peak_resident_bytes =
      std::max(stats_.peak_resident_bytes, stats_.resident_bytes);
}

double Runtime::memory_slowdown() const {
  if (!secure()) return 1.0;
  return epc_.slowdown_factor(stats_.resident_bytes);
}

void Runtime::reset_epoch_counters() {
  stats_.ecalls = 0;
  stats_.ocalls = 0;
  stats_.ecall_bytes = 0;
  stats_.ocall_bytes = 0;
  stats_.sealed_bytes = 0;
}

}  // namespace rex::enclave
