#include "enclave/runtime.hpp"

#include "support/error.hpp"

namespace rex::enclave {

void Runtime::track_release(std::size_t bytes) {
  REX_CHECK(bytes <= stats_.resident_bytes,
            "releasing more enclave memory than allocated");
  stats_.resident_bytes -= bytes;
}

double Runtime::memory_slowdown() const {
  if (!secure()) return 1.0;
  return epc_.slowdown_factor(stats_.resident_bytes);
}

void Runtime::reset_epoch_counters() {
  stats_.ecalls = 0;
  stats_.ocalls = 0;
  stats_.ecall_bytes = 0;
  stats_.ocall_bytes = 0;
  stats_.sealed_bytes = 0;
}

}  // namespace rex::enclave
