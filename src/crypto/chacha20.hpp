// ChaCha20 stream cipher (RFC 8439 §2.3-2.4).
//
// The enclave substrate uses it (via the AEAD in aead.hpp) to encrypt
// node-to-node payloads, and drbg.hpp uses the raw keystream as a
// deterministic random generator for key material.
#pragma once

#include <array>
#include <cstdint>

#include "support/bytes.hpp"

namespace rex::crypto {

inline constexpr std::size_t kChaChaKeySize = 32;
inline constexpr std::size_t kChaChaNonceSize = 12;

using ChaChaKey = std::array<std::uint8_t, kChaChaKeySize>;
using ChaChaNonce = std::array<std::uint8_t, kChaChaNonceSize>;

/// Computes one 64-byte ChaCha20 block for (key, counter, nonce).
void chacha20_block(const ChaChaKey& key, std::uint32_t counter,
                    const ChaChaNonce& nonce, std::uint8_t out[64]);

/// XORs `data` with the ChaCha20 keystream starting at block `initial_counter`.
/// Encryption and decryption are the same operation.
[[nodiscard]] Bytes chacha20_xor(const ChaChaKey& key, const ChaChaNonce& nonce,
                                 std::uint32_t initial_counter, BytesView data);

}  // namespace rex::crypto
