// Poly1305 one-time authenticator (RFC 8439 §2.5).
#pragma once

#include <array>
#include <cstdint>

#include "support/bytes.hpp"

namespace rex::crypto {

inline constexpr std::size_t kPolyTagSize = 16;
inline constexpr std::size_t kPolyKeySize = 32;

using PolyTag = std::array<std::uint8_t, kPolyTagSize>;
using PolyKey = std::array<std::uint8_t, kPolyKeySize>;

/// Computes the Poly1305 tag of `data` under the one-time `key`.
[[nodiscard]] PolyTag poly1305(const PolyKey& key, BytesView data);

}  // namespace rex::crypto
