#include "crypto/x25519.hpp"

#include <cstring>

namespace rex::crypto {

namespace {

using u64 = std::uint64_t;
using u128 = unsigned __int128;

// Field element in GF(2^255 - 19), five 51-bit limbs.
struct Fe {
  u64 v[5];
};

constexpr u64 kMask51 = 0x7ffffffffffffULL;

Fe fe_zero() { return Fe{{0, 0, 0, 0, 0}}; }
Fe fe_one() { return Fe{{1, 0, 0, 0, 0}}; }

Fe fe_add(const Fe& a, const Fe& b) {
  Fe r;
  for (int i = 0; i < 5; ++i) r.v[i] = a.v[i] + b.v[i];
  return r;
}

// a - b, with 2p added first so limbs stay non-negative.
Fe fe_sub(const Fe& a, const Fe& b) {
  static constexpr u64 two_p[5] = {0xfffffffffffdaULL, 0xffffffffffffeULL,
                                   0xffffffffffffeULL, 0xffffffffffffeULL,
                                   0xffffffffffffeULL};
  Fe r;
  for (int i = 0; i < 5; ++i) r.v[i] = a.v[i] + two_p[i] - b.v[i];
  return r;
}

Fe fe_mul(const Fe& a, const Fe& b) {
  const u128 a0 = a.v[0], a1 = a.v[1], a2 = a.v[2], a3 = a.v[3], a4 = a.v[4];
  const u64 b0 = b.v[0], b1 = b.v[1], b2 = b.v[2], b3 = b.v[3], b4 = b.v[4];
  // 19 * b_i for the wraparound terms.
  const u64 b1_19 = b1 * 19, b2_19 = b2 * 19, b3_19 = b3 * 19, b4_19 = b4 * 19;

  u128 t0 = a0 * b0 + a1 * b4_19 + a2 * b3_19 + a3 * b2_19 + a4 * b1_19;
  u128 t1 = a0 * b1 + a1 * b0 + a2 * b4_19 + a3 * b3_19 + a4 * b2_19;
  u128 t2 = a0 * b2 + a1 * b1 + a2 * b0 + a3 * b4_19 + a4 * b3_19;
  u128 t3 = a0 * b3 + a1 * b2 + a2 * b1 + a3 * b0 + a4 * b4_19;
  u128 t4 = a0 * b4 + a1 * b3 + a2 * b2 + a3 * b1 + a4 * b0;

  Fe r;
  u64 carry;
  r.v[0] = static_cast<u64>(t0) & kMask51;
  carry = static_cast<u64>(t0 >> 51);
  t1 += carry;
  r.v[1] = static_cast<u64>(t1) & kMask51;
  carry = static_cast<u64>(t1 >> 51);
  t2 += carry;
  r.v[2] = static_cast<u64>(t2) & kMask51;
  carry = static_cast<u64>(t2 >> 51);
  t3 += carry;
  r.v[3] = static_cast<u64>(t3) & kMask51;
  carry = static_cast<u64>(t3 >> 51);
  t4 += carry;
  r.v[4] = static_cast<u64>(t4) & kMask51;
  carry = static_cast<u64>(t4 >> 51);
  r.v[0] += carry * 19;
  carry = r.v[0] >> 51;
  r.v[0] &= kMask51;
  r.v[1] += carry;
  return r;
}

Fe fe_sq(const Fe& a) { return fe_mul(a, a); }

// a * 121666 (the (A-2)/4 ladder constant).
Fe fe_mul121666(const Fe& a) {
  Fe r;
  u128 t;
  u64 carry = 0;
  for (int i = 0; i < 5; ++i) {
    t = static_cast<u128>(a.v[i]) * 121666 + carry;
    r.v[i] = static_cast<u64>(t) & kMask51;
    carry = static_cast<u64>(t >> 51);
  }
  r.v[0] += carry * 19;
  return r;
}

Fe fe_from_bytes(const std::uint8_t s[32]) {
  Fe r;
  r.v[0] = load_le64(s) & kMask51;
  r.v[1] = (load_le64(s + 6) >> 3) & kMask51;
  r.v[2] = (load_le64(s + 12) >> 6) & kMask51;
  r.v[3] = (load_le64(s + 19) >> 1) & kMask51;
  r.v[4] = (load_le64(s + 24) >> 12) & kMask51;
  return r;
}

void fe_to_bytes(std::uint8_t out[32], const Fe& a) {
  // Carry-reduce, then subtract p twice to fully freeze.
  Fe t = a;
  for (int pass = 0; pass < 2; ++pass) {
    u64 carry;
    for (int i = 0; i < 4; ++i) {
      carry = t.v[i] >> 51;
      t.v[i] &= kMask51;
      t.v[i + 1] += carry;
    }
    carry = t.v[4] >> 51;
    t.v[4] &= kMask51;
    t.v[0] += carry * 19;
  }
  // Now t < 2p; conditionally subtract p.
  t.v[0] += 19;
  u64 carry;
  for (int i = 0; i < 4; ++i) {
    carry = t.v[i] >> 51;
    t.v[i] &= kMask51;
    t.v[i + 1] += carry;
  }
  carry = t.v[4] >> 51;
  t.v[4] &= kMask51;
  t.v[0] += carry * 19;
  // t in [19, p+19]; subtract 19 -> canonical iff we add 2^255 and take mod.
  t.v[0] += (kMask51 - 18);
  for (int i = 1; i < 5; ++i) t.v[i] += kMask51;
  for (int i = 0; i < 4; ++i) {
    carry = t.v[i] >> 51;
    t.v[i] &= kMask51;
    t.v[i + 1] += carry;
  }
  t.v[4] &= kMask51;

  store_le64(out, t.v[0] | (t.v[1] << 51));
  store_le64(out + 8, (t.v[1] >> 13) | (t.v[2] << 38));
  store_le64(out + 16, (t.v[2] >> 26) | (t.v[3] << 25));
  store_le64(out + 24, (t.v[3] >> 39) | (t.v[4] << 12));
}

// Constant-time conditional swap: swaps a and b when bit == 1.
void fe_cswap(u64 bit, Fe& a, Fe& b) {
  const u64 mask = 0 - bit;
  for (int i = 0; i < 5; ++i) {
    const u64 x = mask & (a.v[i] ^ b.v[i]);
    a.v[i] ^= x;
    b.v[i] ^= x;
  }
}

// a^(p-2) = a^-1 by Fermat; fixed square-and-multiply chain.
Fe fe_invert(const Fe& z) {
  Fe z2 = fe_sq(z);                       // 2
  Fe t = fe_sq(z2);                       // 4
  t = fe_sq(t);                           // 8
  Fe z9 = fe_mul(t, z);                   // 9
  Fe z11 = fe_mul(z9, z2);                // 11
  t = fe_sq(z11);                         // 22
  Fe z2_5_0 = fe_mul(t, z9);              // 31 = 2^5 - 1
  t = fe_sq(z2_5_0);
  for (int i = 0; i < 4; ++i) t = fe_sq(t);
  Fe z2_10_0 = fe_mul(t, z2_5_0);         // 2^10 - 1
  t = fe_sq(z2_10_0);
  for (int i = 0; i < 9; ++i) t = fe_sq(t);
  Fe z2_20_0 = fe_mul(t, z2_10_0);        // 2^20 - 1
  t = fe_sq(z2_20_0);
  for (int i = 0; i < 19; ++i) t = fe_sq(t);
  t = fe_mul(t, z2_20_0);                 // 2^40 - 1
  t = fe_sq(t);
  for (int i = 0; i < 9; ++i) t = fe_sq(t);
  Fe z2_50_0 = fe_mul(t, z2_10_0);        // 2^50 - 1
  t = fe_sq(z2_50_0);
  for (int i = 0; i < 49; ++i) t = fe_sq(t);
  Fe z2_100_0 = fe_mul(t, z2_50_0);       // 2^100 - 1
  t = fe_sq(z2_100_0);
  for (int i = 0; i < 99; ++i) t = fe_sq(t);
  t = fe_mul(t, z2_100_0);                // 2^200 - 1
  t = fe_sq(t);
  for (int i = 0; i < 49; ++i) t = fe_sq(t);
  t = fe_mul(t, z2_50_0);                 // 2^250 - 1
  t = fe_sq(t);
  t = fe_sq(t);
  t = fe_sq(t);
  t = fe_sq(t);
  t = fe_sq(t);                           // 2^255 - 32
  return fe_mul(t, z11);                  // 2^255 - 21 = p - 2
}

}  // namespace

X25519Key x25519(const X25519Key& scalar, const X25519Key& point) {
  std::uint8_t e[32];
  std::memcpy(e, scalar.data(), 32);
  e[0] &= 248;
  e[31] &= 127;
  e[31] |= 64;

  std::uint8_t u[32];
  std::memcpy(u, point.data(), 32);
  u[31] &= 127;  // mask the unused top bit per RFC 7748

  const Fe x1 = fe_from_bytes(u);
  Fe x2 = fe_one(), z2 = fe_zero();
  Fe x3 = x1, z3 = fe_one();
  u64 swap = 0;

  for (int t = 254; t >= 0; --t) {
    const u64 k_t = (e[t >> 3] >> (t & 7)) & 1;
    swap ^= k_t;
    fe_cswap(swap, x2, x3);
    fe_cswap(swap, z2, z3);
    swap = k_t;

    const Fe a = fe_add(x2, z2);
    const Fe aa = fe_sq(a);
    const Fe b = fe_sub(x2, z2);
    const Fe bb = fe_sq(b);
    const Fe e_ = fe_sub(aa, bb);
    const Fe c = fe_add(x3, z3);
    const Fe d = fe_sub(x3, z3);
    const Fe da = fe_mul(d, a);
    const Fe cb = fe_mul(c, b);
    x3 = fe_sq(fe_add(da, cb));
    z3 = fe_mul(x1, fe_sq(fe_sub(da, cb)));
    x2 = fe_mul(aa, bb);
    z2 = fe_mul(e_, fe_add(bb, fe_mul121666(e_)));
  }
  fe_cswap(swap, x2, x3);
  fe_cswap(swap, z2, z3);

  const Fe result = fe_mul(x2, fe_invert(z2));
  X25519Key out;
  fe_to_bytes(out.data(), result);
  return out;
}

X25519Key x25519_public_key(const X25519Key& private_key) {
  X25519Key base{};
  base[0] = 9;
  return x25519(private_key, base);
}

bool x25519_shared_secret(const X25519Key& private_key,
                          const X25519Key& peer_public, X25519Key& out) {
  out = x25519(private_key, peer_public);
  std::uint8_t acc = 0;
  for (std::uint8_t byte : out) acc |= byte;
  if (acc == 0) {
    out.fill(0);
    return false;
  }
  return true;
}

}  // namespace rex::crypto
