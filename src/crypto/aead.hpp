// ChaCha20-Poly1305 AEAD (RFC 8439 §2.8).
//
// This is REX's channel cipher: after attestation, every data/model blob
// exchanged between enclaves is sealed with the pairwise session key (the
// Intel SGX SSL AES-GCM role in the paper; see DESIGN.md §1 for the
// substitution rationale).
#pragma once

#include <optional>

#include "crypto/chacha20.hpp"
#include "crypto/poly1305.hpp"
#include "support/bytes.hpp"

namespace rex::crypto {

inline constexpr std::size_t kAeadTagSize = kPolyTagSize;
inline constexpr std::size_t kAeadOverhead = kAeadTagSize;

/// Encrypts `plaintext`, authenticating `aad` too. Output layout:
/// ciphertext || 16-byte tag.
[[nodiscard]] Bytes aead_seal(const ChaChaKey& key, const ChaChaNonce& nonce,
                              BytesView aad, BytesView plaintext);

/// Verifies and decrypts. Returns nullopt on authentication failure (wrong
/// key/nonce/aad or tampered ciphertext).
[[nodiscard]] std::optional<Bytes> aead_open(const ChaChaKey& key,
                                             const ChaChaNonce& nonce,
                                             BytesView aad, BytesView sealed);

/// Builds a 96-bit nonce from a session sequence number. Each (key, seq)
/// pair must be unique; REX sessions count messages per direction.
[[nodiscard]] ChaChaNonce nonce_from_sequence(std::uint64_t sequence,
                                              std::uint32_t direction);

}  // namespace rex::crypto
