#include "crypto/chacha20.hpp"

#include <cstring>

namespace rex::crypto {

namespace {

inline std::uint32_t rotl(std::uint32_t x, int n) {
  return (x << n) | (x >> (32 - n));
}

inline void quarter_round(std::uint32_t& a, std::uint32_t& b, std::uint32_t& c,
                          std::uint32_t& d) {
  a += b; d ^= a; d = rotl(d, 16);
  c += d; b ^= c; b = rotl(b, 12);
  a += b; d ^= a; d = rotl(d, 8);
  c += d; b ^= c; b = rotl(b, 7);
}

}  // namespace

void chacha20_block(const ChaChaKey& key, std::uint32_t counter,
                    const ChaChaNonce& nonce, std::uint8_t out[64]) {
  std::uint32_t state[16];
  // "expand 32-byte k"
  state[0] = 0x61707865;
  state[1] = 0x3320646e;
  state[2] = 0x79622d32;
  state[3] = 0x6b206574;
  for (int i = 0; i < 8; ++i) state[4 + i] = load_le32(key.data() + 4 * i);
  state[12] = counter;
  for (int i = 0; i < 3; ++i) state[13 + i] = load_le32(nonce.data() + 4 * i);

  std::uint32_t working[16];
  std::memcpy(working, state, sizeof working);
  for (int round = 0; round < 10; ++round) {
    quarter_round(working[0], working[4], working[8], working[12]);
    quarter_round(working[1], working[5], working[9], working[13]);
    quarter_round(working[2], working[6], working[10], working[14]);
    quarter_round(working[3], working[7], working[11], working[15]);
    quarter_round(working[0], working[5], working[10], working[15]);
    quarter_round(working[1], working[6], working[11], working[12]);
    quarter_round(working[2], working[7], working[8], working[13]);
    quarter_round(working[3], working[4], working[9], working[14]);
  }
  for (int i = 0; i < 16; ++i) {
    store_le32(out + 4 * i, working[i] + state[i]);
  }
}

Bytes chacha20_xor(const ChaChaKey& key, const ChaChaNonce& nonce,
                   std::uint32_t initial_counter, BytesView data) {
  Bytes out(data.size());
  std::uint8_t keystream[64];
  std::uint32_t counter = initial_counter;
  std::size_t offset = 0;
  while (offset < data.size()) {
    chacha20_block(key, counter++, nonce, keystream);
    const std::size_t take = std::min<std::size_t>(64, data.size() - offset);
    for (std::size_t i = 0; i < take; ++i) {
      out[offset + i] = data[offset + i] ^ keystream[i];
    }
    offset += take;
  }
  return out;
}

}  // namespace rex::crypto
