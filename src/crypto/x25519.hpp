// X25519 elliptic-curve Diffie–Hellman (RFC 7748).
//
// REX attestation embeds each enclave's ephemeral X25519 public key in the
// quote user-data field (paper §III-A); after mutual attestation the shared
// secret seeds HKDF to derive the pairwise session key. Implementation uses
// 51-bit limbs and a constant-time Montgomery ladder (curve25519-donna-c64
// layout). Validated against RFC 7748 test vectors.
#pragma once

#include <array>
#include <cstdint>

#include "support/bytes.hpp"

namespace rex::crypto {

inline constexpr std::size_t kX25519KeySize = 32;
using X25519Key = std::array<std::uint8_t, kX25519KeySize>;

/// scalar * point on Curve25519. `scalar` is clamped internally per RFC 7748.
[[nodiscard]] X25519Key x25519(const X25519Key& scalar, const X25519Key& point);

/// Public key for a private scalar: scalar * base point (9).
[[nodiscard]] X25519Key x25519_public_key(const X25519Key& private_key);

/// Shared secret: private * peer_public. Returns false (and zeros `out`) if
/// the result is the all-zero point (low-order input), which callers must
/// treat as an attestation failure.
[[nodiscard]] bool x25519_shared_secret(const X25519Key& private_key,
                                        const X25519Key& peer_public,
                                        X25519Key& out);

}  // namespace rex::crypto
