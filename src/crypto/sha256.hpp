// SHA-256 (FIPS 180-4).
//
// Used for enclave measurements, HMAC, HKDF and the attestation transcript.
// Streaming interface plus a one-shot helper. Validated against NIST test
// vectors in tests/crypto_test.cpp.
#pragma once

#include <array>
#include <cstdint>

#include "support/bytes.hpp"

namespace rex::crypto {

inline constexpr std::size_t kSha256DigestSize = 32;
using Sha256Digest = std::array<std::uint8_t, kSha256DigestSize>;

class Sha256 {
 public:
  Sha256() { reset(); }

  void reset();

  /// Absorbs `data`; may be called any number of times.
  void update(BytesView data);

  /// Finalizes and returns the digest. The object must be reset() before
  /// further use.
  [[nodiscard]] Sha256Digest finish();

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 8> state_{};
  std::array<std::uint8_t, 64> buffer_{};
  std::size_t buffered_ = 0;
  std::uint64_t total_bytes_ = 0;
};

/// One-shot convenience.
[[nodiscard]] Sha256Digest sha256(BytesView data);

/// Digest as an owned byte buffer (for wire formats).
[[nodiscard]] Bytes sha256_bytes(BytesView data);

}  // namespace rex::crypto
