#include "crypto/drbg.hpp"

#include <cstring>

#include "crypto/sha256.hpp"

namespace rex::crypto {

Drbg::Drbg(std::uint64_t seed) {
  std::uint8_t seed_bytes[8];
  store_le64(seed_bytes, seed);
  const Sha256Digest d = sha256(BytesView(seed_bytes, 8));
  std::memcpy(key_.data(), d.data(), key_.size());
}

Drbg::Drbg(BytesView seed_material) {
  const Sha256Digest d = sha256(seed_material);
  std::memcpy(key_.data(), d.data(), key_.size());
}

void Drbg::generate(std::uint8_t* out, std::size_t n) {
  while (n > 0) {
    if (buffered_ == 0) {
      ChaChaNonce nonce{};
      store_le64(nonce.data() + 4, block_counter_ >> 32);
      chacha20_block(key_, static_cast<std::uint32_t>(block_counter_), nonce,
                     buffer_);
      ++block_counter_;
      buffered_ = sizeof buffer_;
    }
    const std::size_t take = std::min(n, buffered_);
    std::memcpy(out, buffer_ + (sizeof buffer_ - buffered_), take);
    buffered_ -= take;
    out += take;
    n -= take;
  }
}

Bytes Drbg::generate(std::size_t n) {
  Bytes out(n);
  generate(out.data(), n);
  return out;
}

ChaChaKey Drbg::next_key() {
  ChaChaKey k;
  generate(k.data(), k.size());
  return k;
}

X25519Key Drbg::next_x25519_private() {
  X25519Key k;
  generate(k.data(), k.size());
  return k;
}

}  // namespace rex::crypto
