#include "crypto/hmac.hpp"

#include <cstring>

#include "support/error.hpp"

namespace rex::crypto {

Sha256Digest hmac_sha256(BytesView key, BytesView data) {
  std::uint8_t block_key[64] = {};
  if (key.size() > 64) {
    const Sha256Digest kd = sha256(key);
    std::memcpy(block_key, kd.data(), kd.size());
  } else {
    std::memcpy(block_key, key.data(), key.size());
  }

  std::uint8_t ipad[64], opad[64];
  for (int i = 0; i < 64; ++i) {
    ipad[i] = static_cast<std::uint8_t>(block_key[i] ^ 0x36);
    opad[i] = static_cast<std::uint8_t>(block_key[i] ^ 0x5c);
  }

  Sha256 inner;
  inner.update(BytesView(ipad, 64));
  inner.update(data);
  const Sha256Digest inner_digest = inner.finish();

  Sha256 outer;
  outer.update(BytesView(opad, 64));
  outer.update(BytesView(inner_digest.data(), inner_digest.size()));
  return outer.finish();
}

Sha256Digest hkdf_extract(BytesView salt, BytesView ikm) {
  if (salt.empty()) {
    const std::uint8_t zero_salt[kSha256DigestSize] = {};
    return hmac_sha256(BytesView(zero_salt, sizeof zero_salt), ikm);
  }
  return hmac_sha256(salt, ikm);
}

Bytes hkdf_expand(const Sha256Digest& prk, BytesView info,
                  std::size_t length) {
  REX_REQUIRE(length <= 255 * kSha256DigestSize, "HKDF output too long");
  Bytes okm;
  okm.reserve(length);
  Bytes previous;
  std::uint8_t counter = 1;
  while (okm.size() < length) {
    Bytes block_input = previous;
    append(block_input, info);
    block_input.push_back(counter++);
    const Sha256Digest t =
        hmac_sha256(BytesView(prk.data(), prk.size()), block_input);
    previous.assign(t.begin(), t.end());
    const std::size_t take = std::min(previous.size(), length - okm.size());
    okm.insert(okm.end(), previous.begin(), previous.begin() + take);
  }
  return okm;
}

Bytes hkdf(BytesView salt, BytesView ikm, BytesView info, std::size_t length) {
  return hkdf_expand(hkdf_extract(salt, ikm), info, length);
}

bool constant_time_equal(BytesView a, BytesView b) {
  if (a.size() != b.size()) return false;
  std::uint8_t acc = 0;
  for (std::size_t i = 0; i < a.size(); ++i) acc |= a[i] ^ b[i];
  return acc == 0;
}

}  // namespace rex::crypto
