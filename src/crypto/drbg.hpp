// Deterministic random byte generator built on the ChaCha20 keystream.
//
// Simulated enclaves have no RDRAND; every key and nonce in the simulation
// comes from a seeded DRBG so experiments are reproducible. The construction
// is keystream-of-ChaCha20 with a 64-bit counter nonce (not fork-safe — fine
// for a single-process simulator).
#pragma once

#include <cstdint>

#include "crypto/chacha20.hpp"
#include "crypto/x25519.hpp"
#include "support/bytes.hpp"

namespace rex::crypto {

class Drbg {
 public:
  /// Seeds from a 64-bit value (expanded through SHA-256).
  explicit Drbg(std::uint64_t seed);

  /// Seeds from arbitrary entropy bytes.
  explicit Drbg(BytesView seed_material);

  /// Fills `out` with the next `n` pseudo-random bytes.
  void generate(std::uint8_t* out, std::size_t n);

  [[nodiscard]] Bytes generate(std::size_t n);

  /// Fresh symmetric key.
  [[nodiscard]] ChaChaKey next_key();

  /// Fresh X25519 private scalar (clamping happens inside x25519()).
  [[nodiscard]] X25519Key next_x25519_private();

 private:
  ChaChaKey key_{};
  std::uint64_t block_counter_ = 0;
  std::uint8_t buffer_[64];
  std::size_t buffered_ = 0;  // valid bytes remaining at tail of buffer_
};

}  // namespace rex::crypto
