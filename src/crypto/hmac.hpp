// HMAC-SHA256 (RFC 2104) and HKDF (RFC 5869).
//
// HMAC signs simulated SGX quotes (the platform-key substitution documented
// in DESIGN.md §1) and authenticates sealed blobs; HKDF derives the session
// keys from the X25519 shared secret during REX attestation.
#pragma once

#include "crypto/sha256.hpp"
#include "support/bytes.hpp"

namespace rex::crypto {

/// HMAC-SHA256 over `data` with `key` (any key length).
[[nodiscard]] Sha256Digest hmac_sha256(BytesView key, BytesView data);

/// HKDF-Extract: PRK = HMAC(salt, ikm).
[[nodiscard]] Sha256Digest hkdf_extract(BytesView salt, BytesView ikm);

/// HKDF-Expand: derives `length` bytes (length <= 255*32) bound to `info`.
[[nodiscard]] Bytes hkdf_expand(const Sha256Digest& prk, BytesView info,
                                std::size_t length);

/// Extract-then-expand convenience.
[[nodiscard]] Bytes hkdf(BytesView salt, BytesView ikm, BytesView info,
                         std::size_t length);

/// Constant-time equality; the comparison time depends only on the length.
[[nodiscard]] bool constant_time_equal(BytesView a, BytesView b);

}  // namespace rex::crypto
