#include "crypto/aead.hpp"

#include <cstring>

#include "crypto/hmac.hpp"

namespace rex::crypto {

namespace {

PolyKey poly_key_for(const ChaChaKey& key, const ChaChaNonce& nonce) {
  std::uint8_t block[64];
  chacha20_block(key, 0, nonce, block);
  PolyKey pk;
  std::memcpy(pk.data(), block, pk.size());
  return pk;
}

PolyTag compute_tag(const PolyKey& pk, BytesView aad, BytesView ciphertext) {
  // mac_data = aad || pad16 || ct || pad16 || len(aad) || len(ct)
  Bytes mac_data;
  mac_data.reserve(aad.size() + ciphertext.size() + 32);
  append(mac_data, aad);
  mac_data.resize((mac_data.size() + 15) / 16 * 16, 0);
  append(mac_data, ciphertext);
  mac_data.resize((mac_data.size() + 15) / 16 * 16, 0);
  std::uint8_t lengths[16];
  store_le64(lengths, aad.size());
  store_le64(lengths + 8, ciphertext.size());
  append(mac_data, BytesView(lengths, 16));
  return poly1305(pk, mac_data);
}

}  // namespace

Bytes aead_seal(const ChaChaKey& key, const ChaChaNonce& nonce, BytesView aad,
                BytesView plaintext) {
  Bytes out = chacha20_xor(key, nonce, 1, plaintext);
  const PolyTag tag = compute_tag(poly_key_for(key, nonce), aad, out);
  append(out, BytesView(tag.data(), tag.size()));
  return out;
}

std::optional<Bytes> aead_open(const ChaChaKey& key, const ChaChaNonce& nonce,
                               BytesView aad, BytesView sealed) {
  if (sealed.size() < kAeadTagSize) return std::nullopt;
  const BytesView ciphertext = sealed.first(sealed.size() - kAeadTagSize);
  const BytesView tag = sealed.last(kAeadTagSize);
  const PolyTag expected =
      compute_tag(poly_key_for(key, nonce), aad, ciphertext);
  if (!constant_time_equal(BytesView(expected.data(), expected.size()), tag)) {
    return std::nullopt;
  }
  return chacha20_xor(key, nonce, 1, ciphertext);
}

ChaChaNonce nonce_from_sequence(std::uint64_t sequence,
                                std::uint32_t direction) {
  ChaChaNonce nonce{};
  store_le32(nonce.data(), direction);
  store_le64(nonce.data() + 4, sequence);
  return nonce;
}

}  // namespace rex::crypto
