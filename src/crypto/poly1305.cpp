#include "crypto/poly1305.hpp"

#include <cstring>

namespace rex::crypto {

// 26-bit limb implementation (five limbs of r, h), following the widely-used
// public-domain layout (Floodyberry's poly1305-donna).
PolyTag poly1305(const PolyKey& key, BytesView data) {
  // r is clamped per the RFC.
  const std::uint32_t r0 = load_le32(key.data() + 0) & 0x3ffffff;
  const std::uint32_t r1 = (load_le32(key.data() + 3) >> 2) & 0x3ffff03;
  const std::uint32_t r2 = (load_le32(key.data() + 6) >> 4) & 0x3ffc0ff;
  const std::uint32_t r3 = (load_le32(key.data() + 9) >> 6) & 0x3f03fff;
  const std::uint32_t r4 = (load_le32(key.data() + 12) >> 8) & 0x00fffff;

  const std::uint32_t s1 = r1 * 5;
  const std::uint32_t s2 = r2 * 5;
  const std::uint32_t s3 = r3 * 5;
  const std::uint32_t s4 = r4 * 5;

  std::uint32_t h0 = 0, h1 = 0, h2 = 0, h3 = 0, h4 = 0;

  std::size_t offset = 0;
  std::size_t remaining = data.size();
  while (remaining > 0) {
    std::uint8_t block[17] = {};
    const std::size_t take = std::min<std::size_t>(16, remaining);
    std::memcpy(block, data.data() + offset, take);
    block[take] = 1;  // append the 2^(8*take) bit

    const std::uint32_t t0 = load_le32(block + 0);
    const std::uint32_t t1 = load_le32(block + 4);
    const std::uint32_t t2 = load_le32(block + 8);
    const std::uint32_t t3 = load_le32(block + 12);
    const std::uint32_t t4 = block[16];

    h0 += t0 & 0x3ffffff;
    h1 += static_cast<std::uint32_t>(
              ((std::uint64_t{t1} << 32 | t0) >> 26)) & 0x3ffffff;
    h2 += static_cast<std::uint32_t>(
              ((std::uint64_t{t2} << 32 | t1) >> 20)) & 0x3ffffff;
    h3 += static_cast<std::uint32_t>(
              ((std::uint64_t{t3} << 32 | t2) >> 14)) & 0x3ffffff;
    h4 += static_cast<std::uint32_t>(
              ((std::uint64_t{t4} << 32 | t3) >> 8));

    // h *= r (mod 2^130 - 5)
    const std::uint64_t d0 = static_cast<std::uint64_t>(h0) * r0 +
                             static_cast<std::uint64_t>(h1) * s4 +
                             static_cast<std::uint64_t>(h2) * s3 +
                             static_cast<std::uint64_t>(h3) * s2 +
                             static_cast<std::uint64_t>(h4) * s1;
    std::uint64_t d1 = static_cast<std::uint64_t>(h0) * r1 +
                       static_cast<std::uint64_t>(h1) * r0 +
                       static_cast<std::uint64_t>(h2) * s4 +
                       static_cast<std::uint64_t>(h3) * s3 +
                       static_cast<std::uint64_t>(h4) * s2;
    std::uint64_t d2 = static_cast<std::uint64_t>(h0) * r2 +
                       static_cast<std::uint64_t>(h1) * r1 +
                       static_cast<std::uint64_t>(h2) * r0 +
                       static_cast<std::uint64_t>(h3) * s4 +
                       static_cast<std::uint64_t>(h4) * s3;
    std::uint64_t d3 = static_cast<std::uint64_t>(h0) * r3 +
                       static_cast<std::uint64_t>(h1) * r2 +
                       static_cast<std::uint64_t>(h2) * r1 +
                       static_cast<std::uint64_t>(h3) * r0 +
                       static_cast<std::uint64_t>(h4) * s4;
    std::uint64_t d4 = static_cast<std::uint64_t>(h0) * r4 +
                       static_cast<std::uint64_t>(h1) * r3 +
                       static_cast<std::uint64_t>(h2) * r2 +
                       static_cast<std::uint64_t>(h3) * r1 +
                       static_cast<std::uint64_t>(h4) * r0;

    // Carry propagation.
    std::uint32_t carry = static_cast<std::uint32_t>(d0 >> 26);
    h0 = static_cast<std::uint32_t>(d0) & 0x3ffffff;
    d1 += carry;
    carry = static_cast<std::uint32_t>(d1 >> 26);
    h1 = static_cast<std::uint32_t>(d1) & 0x3ffffff;
    d2 += carry;
    carry = static_cast<std::uint32_t>(d2 >> 26);
    h2 = static_cast<std::uint32_t>(d2) & 0x3ffffff;
    d3 += carry;
    carry = static_cast<std::uint32_t>(d3 >> 26);
    h3 = static_cast<std::uint32_t>(d3) & 0x3ffffff;
    d4 += carry;
    carry = static_cast<std::uint32_t>(d4 >> 26);
    h4 = static_cast<std::uint32_t>(d4) & 0x3ffffff;
    h0 += carry * 5;
    carry = h0 >> 26;
    h0 &= 0x3ffffff;
    h1 += carry;

    offset += take;
    remaining -= take;
  }

  // Full carry and reduction mod 2^130 - 5.
  std::uint32_t carry = h1 >> 26;
  h1 &= 0x3ffffff;
  h2 += carry;
  carry = h2 >> 26;
  h2 &= 0x3ffffff;
  h3 += carry;
  carry = h3 >> 26;
  h3 &= 0x3ffffff;
  h4 += carry;
  carry = h4 >> 26;
  h4 &= 0x3ffffff;
  h0 += carry * 5;
  carry = h0 >> 26;
  h0 &= 0x3ffffff;
  h1 += carry;

  // Compute h + -p and select.
  std::uint32_t g0 = h0 + 5;
  carry = g0 >> 26;
  g0 &= 0x3ffffff;
  std::uint32_t g1 = h1 + carry;
  carry = g1 >> 26;
  g1 &= 0x3ffffff;
  std::uint32_t g2 = h2 + carry;
  carry = g2 >> 26;
  g2 &= 0x3ffffff;
  std::uint32_t g3 = h3 + carry;
  carry = g3 >> 26;
  g3 &= 0x3ffffff;
  std::uint32_t g4 = h4 + carry - (1u << 26);

  const std::uint32_t mask = (g4 >> 31) - 1;  // all-ones if h >= p
  h0 = (h0 & ~mask) | (g0 & mask);
  h1 = (h1 & ~mask) | (g1 & mask);
  h2 = (h2 & ~mask) | (g2 & mask);
  h3 = (h3 & ~mask) | (g3 & mask);
  h4 = (h4 & ~mask) | (g4 & mask);

  // Serialize h and add s (the second key half) mod 2^128.
  const std::uint64_t f0 =
      (std::uint64_t{h0} | (std::uint64_t{h1} << 26)) & 0xffffffffULL;
  const std::uint64_t f1 =
      ((std::uint64_t{h1} >> 6) | (std::uint64_t{h2} << 20)) & 0xffffffffULL;
  const std::uint64_t f2 =
      ((std::uint64_t{h2} >> 12) | (std::uint64_t{h3} << 14)) & 0xffffffffULL;
  const std::uint64_t f3 =
      ((std::uint64_t{h3} >> 18) | (std::uint64_t{h4} << 8)) & 0xffffffffULL;

  std::uint64_t acc = f0 + load_le32(key.data() + 16);
  PolyTag tag;
  store_le32(tag.data() + 0, static_cast<std::uint32_t>(acc));
  acc = f1 + load_le32(key.data() + 20) + (acc >> 32);
  store_le32(tag.data() + 4, static_cast<std::uint32_t>(acc));
  acc = f2 + load_le32(key.data() + 24) + (acc >> 32);
  store_le32(tag.data() + 8, static_cast<std::uint32_t>(acc));
  acc = f3 + load_le32(key.data() + 28) + (acc >> 32);
  store_le32(tag.data() + 12, static_cast<std::uint32_t>(acc));
  return tag;
}

}  // namespace rex::crypto
